"""Classical single-processor schedulability tests.

The estimation library supplies per-process execution times and
periods; these tests answer the paper's "deciding the most appropriate
scheduling policy for each processor" question:

* Liu & Layland utilization bound for rate-monotonic priorities
  (sufficient),
* exact response-time analysis for fixed priorities (necessary and
  sufficient for the independent-task model),
* the EDF utilization test (exact for implicit deadlines).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional

from ..errors import ReproError
from .tasks import Task, total_utilization


def rm_utilization_bound(task_count: int) -> float:
    """Liu & Layland 1973: U <= n(2^(1/n) - 1)."""
    if task_count <= 0:
        raise ReproError("need at least one task")
    return task_count * (2 ** (1.0 / task_count) - 1)


def rm_utilization_test(tasks: List[Task]) -> bool:
    """Sufficient RM test: schedulable if U is under the LL bound."""
    if not tasks:
        raise ReproError("need at least one task")
    return total_utilization(tasks) <= rm_utilization_bound(len(tasks))


def edf_test(tasks: List[Task]) -> bool:
    """EDF with implicit deadlines is schedulable iff U <= 1."""
    if not tasks:
        raise ReproError("need at least one task")
    if any(task.deadline_ns is not None
           and task.deadline_ns < task.period_ns for task in tasks):
        raise ReproError("the simple EDF test needs implicit deadlines; "
                         "use response-time analysis instead")
    return total_utilization(tasks) <= 1.0


@dataclasses.dataclass(frozen=True)
class ResponseTimeResult:
    """Outcome of fixed-priority response-time analysis."""

    schedulable: bool
    response_ns: Dict[str, float]        # worst-case response per task
    failing_task: Optional[str] = None

    def margin_ns(self, task: Task) -> float:
        """Slack between deadline and worst-case response."""
        return task.effective_deadline_ns - self.response_ns[task.name]


def response_time_analysis(tasks: List[Task],
                           max_iterations: int = 10_000) -> ResponseTimeResult:
    """Exact RTA for fixed priorities (rate-monotonic order).

    Tasks are prioritized by ascending period (ties by name, for
    determinism).  Classic fixed-point iteration:
    ``R = C + sum_higher ceil(R / T_j) * C_j``.
    """
    if not tasks:
        raise ReproError("need at least one task")
    ordered = sorted(tasks, key=lambda t: (t.period_ns, t.name))
    responses: Dict[str, float] = {}
    for index, task in enumerate(ordered):
        higher = ordered[:index]
        response = task.execution_ns
        for _ in range(max_iterations):
            interference = sum(
                math.ceil(response / other.period_ns) * other.execution_ns
                for other in higher
            )
            updated = task.execution_ns + interference
            if updated > task.effective_deadline_ns:
                responses[task.name] = updated
                return ResponseTimeResult(False, responses, task.name)
            if abs(updated - response) < 1e-9:
                break
            response = updated
        else:  # pragma: no cover - defensive
            raise ReproError(
                f"response-time iteration did not converge for {task.name!r}"
            )
        responses[task.name] = response
    return ResponseTimeResult(True, responses)


def schedulability_report(tasks: List[Task]) -> str:
    """Human-readable summary of all three tests."""
    utilization = total_utilization(tasks)
    lines = [f"task set ({len(tasks)} tasks, U = {utilization:.3f}):"]
    for task in sorted(tasks, key=lambda t: t.period_ns):
        lines.append(
            f"  {task.name:<16} C = {task.execution_ns / 1e3:9.1f} us   "
            f"T = {task.period_ns / 1e3:9.1f} us   u = {task.utilization:.3f}"
        )
    bound = rm_utilization_bound(len(tasks))
    lines.append(f"  RM LL-bound test : U {utilization:.3f} "
                 f"{'<=' if utilization <= bound else '>'} {bound:.3f} -> "
                 f"{'pass' if rm_utilization_test(tasks) else 'inconclusive'}")
    rta = response_time_analysis(tasks)
    lines.append(f"  RM response-time : "
                 f"{'schedulable' if rta.schedulable else f'FAILS at {rta.failing_task}'}")
    for task in sorted(tasks, key=lambda t: t.period_ns):
        lines.append(f"    {task.name:<14} R = "
                     f"{rta.response_ns[task.name] / 1e3:9.1f} us "
                     f"(D = {task.effective_deadline_ns / 1e3:.1f} us)")
    lines.append(f"  EDF utilization  : "
                 f"{'schedulable' if edf_test(tasks) else 'overloaded'}")
    return "\n".join(lines)
