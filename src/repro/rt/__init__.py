"""Real-time analysis over estimation results (paper §6 extension)."""

from .schedulability import (
    ResponseTimeResult,
    edf_test,
    response_time_analysis,
    rm_utilization_bound,
    rm_utilization_test,
    schedulability_report,
)
from .tasks import Task, task_from_measurements, total_utilization

__all__ = [
    "ResponseTimeResult", "edf_test", "response_time_analysis",
    "rm_utilization_bound", "rm_utilization_test", "schedulability_report",
    "Task", "task_from_measurements", "total_utilization",
]
