"""Task models extracted from strict-timed simulation results.

The paper's §6: "Based on the mean execution times and periods of the
different processes, rate analysis and scheduling for soft, real-time
embedded systems can be performed.  The instantaneous execution times
for the segments ... can be used for performance verification and
scheduling of hard, real-time systems."

This module turns the measured quantities into classical periodic task
models: execution demand from the performance library's per-process
statistics (mean for soft analysis, observed-maximum for hard
analysis), period from capture-point inter-arrival times.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from ..capture.metrics import inter_arrival_ns
from ..capture.points import CapturePoint
from ..core.analysis import PerformanceLibrary
from ..errors import CaptureError, ReproError
from ..kernel.time import SimTime


@dataclasses.dataclass(frozen=True)
class Task:
    """A periodic task: execution time C, period T, deadline D (= T by
    default)."""

    name: str
    execution_ns: float
    period_ns: float
    deadline_ns: Optional[float] = None

    def __post_init__(self):
        if self.execution_ns <= 0:
            raise ReproError(f"task {self.name!r}: execution must be positive")
        if self.period_ns <= 0:
            raise ReproError(f"task {self.name!r}: period must be positive")
        if self.execution_ns > self.period_ns:
            raise ReproError(
                f"task {self.name!r}: execution {self.execution_ns} exceeds "
                f"period {self.period_ns}; the task set is trivially "
                f"infeasible on one processor"
            )

    @property
    def effective_deadline_ns(self) -> float:
        return self.deadline_ns if self.deadline_ns is not None else self.period_ns

    @property
    def utilization(self) -> float:
        return self.execution_ns / self.period_ns


def task_from_measurements(name: str,
                           perf: PerformanceLibrary,
                           process_name: str,
                           activations: CapturePoint,
                           hard: bool = False,
                           deadline: Optional[SimTime] = None) -> Task:
    """Build a :class:`Task` from a finished analysed simulation.

    ``activations`` must have captured every job release of the
    process.  Soft analysis (default) uses mean demand per activation;
    ``hard=True`` uses the observed-maximum segment-sum per activation
    approximated by the busiest activation interval.
    """
    stats = perf.stats.get(process_name)
    if stats is None:
        raise ReproError(f"no analysed process named {process_name!r}")
    gaps = inter_arrival_ns(activations)
    if not gaps:
        raise CaptureError(
            f"capture point {activations.name!r} needs at least two hits "
            f"to derive a period"
        )
    period_ns = sum(gaps) / len(gaps)
    jobs = len(activations.events)
    busy_ns = stats.busy_time.to_ns()
    execution_ns = busy_ns / jobs
    if hard:
        # conservative inflation: assume the worst observed rate of
        # demand concentrates in one period
        execution_ns = execution_ns * (max(gaps) / period_ns)
    return Task(
        name=name,
        execution_ns=execution_ns,
        period_ns=period_ns,
        deadline_ns=deadline.to_ns() if deadline is not None else None,
    )


def total_utilization(tasks: List[Task]) -> float:
    return sum(task.utilization for task in tasks)
