"""Timing metrics over captured events (paper §4/§6).

The captured lists support "the specific timing analyses required, such
as response times, throughputs, input and output rates" and timing
constraint verification.  All functions operate on
:class:`~repro.capture.points.CapturePoint` objects (or raw event
lists) and return plain numbers/summaries ready for assertions.
"""

from __future__ import annotations

import dataclasses
import statistics
from typing import List, Sequence

from ..errors import CaptureError
from ..kernel.time import SimTime
from .points import CaptureEvent, CapturePoint


@dataclasses.dataclass(frozen=True)
class TimingSummary:
    """Summary statistics of a list of durations (in nanoseconds)."""

    count: int
    mean_ns: float
    min_ns: float
    max_ns: float
    stdev_ns: float

    def __str__(self) -> str:
        return (f"n={self.count} mean={self.mean_ns:.1f}ns "
                f"min={self.min_ns:.1f}ns max={self.max_ns:.1f}ns "
                f"stdev={self.stdev_ns:.1f}ns")


def _events(point) -> List[CaptureEvent]:
    if isinstance(point, CapturePoint):
        return point.events
    return list(point)


def summarize_ns(durations_ns: Sequence[float]) -> TimingSummary:
    if not durations_ns:
        raise CaptureError("cannot summarize an empty duration list")
    stdev = statistics.pstdev(durations_ns) if len(durations_ns) > 1 else 0.0
    return TimingSummary(
        count=len(durations_ns),
        mean_ns=statistics.fmean(durations_ns),
        min_ns=min(durations_ns),
        max_ns=max(durations_ns),
        stdev_ns=stdev,
    )


def response_times_ns(stimulus, response) -> List[float]:
    """Pairwise latencies between the i-th stimulus and i-th response.

    The classic request/response pattern: both points must have hit the
    same number of times (extra trailing stimuli are ignored), and each
    response must not precede its stimulus.
    """
    stim = _events(stimulus)
    resp = _events(response)
    if len(resp) > len(stim):
        raise CaptureError(
            f"more responses ({len(resp)}) than stimuli ({len(stim)})"
        )
    latencies = []
    for s, r in zip(stim, resp):
        if r.time_fs < s.time_fs:
            raise CaptureError(
                f"response at {SimTime(r.time_fs)} precedes stimulus at "
                f"{SimTime(s.time_fs)}; check capture-point placement"
            )
        latencies.append((r.time_fs - s.time_fs) / 1e6)
    return latencies


def inter_arrival_ns(point) -> List[float]:
    """Gaps between consecutive hits (the paper's inter-execution times)."""
    events = _events(point)
    return [(b.time_fs - a.time_fs) / 1e6
            for a, b in zip(events, events[1:])]


def mean_period_ns(point) -> float:
    """Mean inter-arrival gap — the rate-analysis figure of [6]."""
    gaps = inter_arrival_ns(point)
    if not gaps:
        raise CaptureError("need at least two hits to compute a period")
    return statistics.fmean(gaps)


def throughput_per_us(point) -> float:
    """Completed hits per simulated microsecond, over the hit span."""
    events = _events(point)
    if len(events) < 2:
        raise CaptureError("need at least two hits to compute throughput")
    span_us = (events[-1].time_fs - events[0].time_fs) / 1e9
    if span_us == 0:
        raise CaptureError("all hits share one instant; throughput undefined")
    return (len(events) - 1) / span_us


def deadline_violations(stimulus, response,
                        deadline: SimTime) -> List[int]:
    """Indices of request/response pairs exceeding ``deadline``.

    The timing-constraint verification primitive: an empty list means
    the constraint holds over the simulated run.
    """
    limit_ns = deadline.to_ns()
    return [i for i, latency in
            enumerate(response_times_ns(stimulus, response))
            if latency > limit_ns]


def jitter_ns(point) -> float:
    """Peak-to-peak variation of the inter-arrival gaps."""
    gaps = inter_arrival_ns(point)
    if not gaps:
        raise CaptureError("need at least two hits to compute jitter")
    return max(gaps) - min(gaps)
