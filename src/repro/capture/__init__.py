"""Capture points, event export and timing metrics (paper §4)."""

from .export import to_csv, to_csv_text, to_matlab, to_matlab_text
from .metrics import (
    TimingSummary,
    deadline_violations,
    inter_arrival_ns,
    jitter_ns,
    mean_period_ns,
    response_times_ns,
    summarize_ns,
    throughput_per_us,
)
from .points import CaptureBoard, CaptureEvent, CapturePoint

__all__ = [
    "to_csv", "to_csv_text", "to_matlab", "to_matlab_text",
    "TimingSummary", "deadline_violations", "inter_arrival_ns", "jitter_ns",
    "mean_period_ns", "response_times_ns", "summarize_ns", "throughput_per_us",
    "CaptureBoard", "CaptureEvent", "CapturePoint",
]
