"""Capture points (paper §4).

"The user can insert capture points anywhere inside the code and a list
of events corresponding to the concrete times when the capture points
were executed is generated."  A :class:`CapturePoint` is a plain
callable — inserting one is *not* a segment node and does not perturb
the analysis; it simply timestamps its hits with the current simulated
(time, delta) and an optional associated value ("it is also possible to
associate values of internal signals of the system to these time
values").

Capture points can be conditional ("capture points can be conditional
to a certain assertion"): pass a predicate and only satisfying hits are
recorded.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional

from ..errors import CaptureError
from ..kernel.simulator import Simulator
from ..kernel.time import SimTime


@dataclasses.dataclass(frozen=True)
class CaptureEvent:
    """One recorded hit of a capture point."""

    time_fs: int
    delta: int
    value: Any = None

    @property
    def time(self) -> SimTime:
        return SimTime(self.time_fs)

    @property
    def time_us(self) -> float:
        return self.time_fs / 1e9

    @property
    def time_ns(self) -> float:
        return self.time_fs / 1e6


class CapturePoint:
    """A named probe recording (time, delta, value) on every hit."""

    def __init__(self, simulator: Simulator, name: str,
                 condition: Optional[Callable[[Any], bool]] = None):
        self.simulator = simulator
        self.name = name
        self.condition = condition
        self.events: List[CaptureEvent] = []

    def hit(self, value: Any = None) -> None:
        """Record one hit (skipped if the condition rejects ``value``)."""
        if self.condition is not None and not self.condition(value):
            return
        scheduler = self.simulator.scheduler
        self.events.append(
            CaptureEvent(scheduler.now.femtoseconds, scheduler.delta, value)
        )

    # CapturePoints read naturally when used as callables in process code.
    __call__ = hit

    def times(self) -> List[SimTime]:
        return [e.time for e in self.events]

    def times_ns(self) -> List[float]:
        return [e.time_ns for e in self.events]

    def values(self) -> List[Any]:
        return [e.value for e in self.events]

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"CapturePoint({self.name!r}, hits={len(self.events)})"


class CaptureBoard:
    """A registry of capture points sharing one simulator.

    Convenience factory so experiments can create, iterate and export
    their probes as a group.
    """

    def __init__(self, simulator: Simulator):
        self.simulator = simulator
        self.points: Dict[str, CapturePoint] = {}

    def point(self, name: str,
              condition: Optional[Callable[[Any], bool]] = None) -> CapturePoint:
        """Create (or retrieve) the capture point called ``name``.

        Retrieving an existing name with a new condition is an error —
        two probes with one name would silently merge their event lists.
        """
        existing = self.points.get(name)
        if existing is not None:
            if condition is not None and condition is not existing.condition:
                raise CaptureError(
                    f"capture point {name!r} already exists with a "
                    f"different condition"
                )
            return existing
        created = CapturePoint(self.simulator, name, condition)
        self.points[name] = created
        return created

    def __getitem__(self, name: str) -> CapturePoint:
        try:
            return self.points[name]
        except KeyError:
            raise CaptureError(f"no capture point named {name!r}") from None

    def __iter__(self):
        return iter(self.points.values())

    def __len__(self) -> int:
        return len(self.points)
