"""A Python-subset → OR-lite compiler.

The paper's single-source methodology runs *one* description everywhere.
This compiler closes the loop for the reference measurements: the same
Python function that executes natively (plain ints) and annotated
(:class:`~repro.annotate.AInt` arguments) is compiled to OR-lite
assembly and run on the cycle-accurate :class:`~repro.iss.Machine`,
giving the ISS cycle counts of Tables 1 and 3.

Supported subset (anything else raises :class:`~repro.errors.CompileError`):

* integer locals and parameters; arrays (Python lists / ``AArray``)
  passed by reference as word pointers;
* ``=``, ``+=``-style augmented assignment, subscript load/store;
* ``+ - * // % << >> & | ^``, unary ``- ~ not``, comparisons,
  ``and``/``or`` with short-circuit;
* ``if``/``elif``/``else``, ``while``, ``break``/``continue``,
  ``for i in range(...)`` / ``arange(...)`` with constant step;
* calls to other compiled functions (hoisted out of expressions),
  ``return``;
* ``make_array(n)`` — bump-allocated scratch array (the single-source
  analogue of a local C array).

Code generation is deliberately naive — every local lives in the stack
frame, every expression runs through temporaries — which mirrors the
unoptimized embedded compilation the paper's platform weights absorb,
and gives calibration a realistic target.
"""

from __future__ import annotations

import ast
import dataclasses
import inspect
import textwrap
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import CompileError
from .assembler import Program, resolve
from .isa import (
    Instr,
    MAX_REG_ARGS,
    REG_ARG_FIRST,
    REG_FP,
    REG_HP,
    REG_LR,
    REG_RV,
    REG_SP,
    REG_TMP_FIRST,
    REG_TMP_LAST,
    REG_ZERO,
)

#: Names compiled as loop iterators (both behave like ``range``).
_RANGE_NAMES = ("range", "arange")
#: Name compiled as the bump allocator intrinsic.
_ALLOC_NAME = "make_array"
#: Identity intrinsic: ``aint(x)`` wraps a value in AInt for annotated
#: runs; on the machine it is a no-op.
_AINT_NAME = "aint"

#: Register split inside the r12-r25 temporary file (see
#: ``_FunctionCompiler.__init__``): locals below, expression temps above.
#: Sethi-Ullman evaluation ordering keeps expression pressure within
#: four temporaries for the supported subset.
_LOCAL_BUDGET = 10
_EXPR_FIRST = REG_TMP_FIRST + _LOCAL_BUDGET

_BINOPS = {
    ast.Add: "add", ast.Sub: "sub", ast.Mult: "mul",
    ast.FloorDiv: "div", ast.Mod: "rem",
    ast.LShift: "sll", ast.RShift: "sra",
    ast.BitAnd: "and", ast.BitOr: "or", ast.BitXor: "xor",
}
_IMM_BINOPS = {
    ast.Add: "addi", ast.BitAnd: "andi", ast.BitOr: "ori",
    ast.BitXor: "xori", ast.LShift: "slli", ast.RShift: "srai",
}
_BRANCHES = {
    ast.Lt: "blt", ast.LtE: "ble", ast.Gt: "bgt", ast.GtE: "bge",
    ast.Eq: "beq", ast.NotEq: "bne",
}
_SETS = {
    ast.Lt: ("slt", False), ast.LtE: ("sle", False),
    ast.Gt: ("slt", True), ast.GtE: ("sle", True),
    ast.Eq: ("seq", False), ast.NotEq: ("sne", False),
}


def _fail(node: ast.AST, message: str) -> CompileError:
    line = getattr(node, "lineno", "?")
    return CompileError(f"line {line}: {message}")


class _CallHoister(ast.NodeTransformer):
    """Pull nested calls out of expressions into temp assignments.

    Keeps register allocation trivial: after hoisting, a call only
    appears as the whole RHS of an assignment or as a bare statement,
    so no expression temporaries are ever live across a call.
    """

    def __init__(self):
        self.counter = 0

    def _fresh(self) -> str:
        self.counter += 1
        return f"__hoist{self.counter}"

    def _hoist_block(self, body: List[ast.stmt]) -> List[ast.stmt]:
        out: List[ast.stmt] = []
        for stmt in body:
            prelude: List[ast.stmt] = []
            stmt = self._hoist_stmt(stmt, prelude)
            out.extend(prelude)
            out.append(stmt)
        return out

    def _hoist_stmt(self, stmt: ast.stmt, prelude: List[ast.stmt]) -> ast.stmt:
        # Recurse into nested blocks first.
        for field in ("body", "orelse"):
            block = getattr(stmt, field, None)
            if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                setattr(stmt, field, self._hoist_block(block))

        keep_whole_call = (
            (isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call))
            or (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call))
            or (isinstance(stmt, ast.Return) and isinstance(stmt.value, ast.Call))
        )
        for field, value in ast.iter_fields(stmt):
            if field in ("body", "orelse"):
                continue
            if isinstance(stmt, ast.While) and field == "test":
                # Hoisting a call out of a while test would evaluate it
                # once instead of per iteration; the compiler rejects
                # calls there instead (see compile_branch).
                continue
            if isinstance(value, ast.expr):
                top_ok = keep_whole_call and field == "value"
                setattr(stmt, field, self._hoist_expr(value, prelude, top_ok))
        return stmt

    def _hoist_expr(self, node: ast.expr, prelude: List[ast.stmt],
                    top_call_ok: bool) -> ast.expr:
        # For-loop iterators (range/arange) keep their argument calls hoisted
        # but the range call itself is structural and handled by the caller.
        if isinstance(node, ast.Call):
            node.args = [self._hoist_expr(a, prelude, False) for a in node.args]
            func = node.func
            is_structural = (isinstance(func, ast.Name)
                             and func.id in _RANGE_NAMES + (_AINT_NAME,))
            if top_call_ok or is_structural:
                return node
            name = self._fresh()
            assign = ast.Assign(
                targets=[ast.Name(id=name, ctx=ast.Store())], value=node
            )
            ast.copy_location(assign, node)
            ast.fix_missing_locations(assign)
            prelude.append(assign)
            replacement = ast.Name(id=name, ctx=ast.Load())
            ast.copy_location(replacement, node)
            return replacement
        for field, value in ast.iter_fields(node):
            if isinstance(value, ast.expr):
                setattr(node, field, self._hoist_expr(value, prelude, False))
            elif isinstance(value, list):
                setattr(node, field, [
                    self._hoist_expr(v, prelude, False)
                    if isinstance(v, ast.expr) else v
                    for v in value
                ])
        return node

    def visit_FunctionDef(self, node: ast.FunctionDef) -> ast.FunctionDef:
        node.body = self._hoist_block(node.body)
        return node


class _FunctionCompiler:
    """Compiles one function body to instructions with symbolic labels."""

    def __init__(self, node: ast.FunctionDef, known_functions: Dict[str, str],
                 globals_dict: Optional[dict] = None):
        self.node = node
        self.name = node.name
        self.known = known_functions
        self.globals = globals_dict or {}
        self.instrs: List[Instr] = []
        self.labels: Dict[str, int] = {}
        self.slots: Dict[str, int] = {}      # local name -> frame slot
        #: locals promoted to registers (name -> register), callee-saved.
        #: Real compilers keep hot locals in registers; modelling that
        #: keeps the machine's costs correlated with source-level
        #: operation counts (see calibration notes in DESIGN.md).
        self.reg_locals: Dict[str, int] = {}
        self.label_counter = 0
        self.loop_stack: List[tuple] = []    # (continue_label, break_label)
        self._collect_locals()
        # Register convention within the temporary file r12-r25:
        # r12-r19 hold promoted locals and are callee-saved (a function
        # saves exactly the ones it uses); r20-r25 are expression
        # temporaries, caller-clobbered but — thanks to call hoisting —
        # never live across a call.
        self.free_temps = list(range(_EXPR_FIRST, REG_TMP_LAST + 1))
        self._temp_pool = frozenset(self.free_temps)

    # -- helpers --------------------------------------------------------

    def emit(self, op: str, **kwargs) -> None:
        self.instrs.append(Instr(op, **kwargs))

    def mark(self, label: str) -> None:
        self.labels[label] = len(self.instrs)

    def fresh_label(self, hint: str) -> str:
        self.label_counter += 1
        return f"{self.name}.{hint}{self.label_counter}"

    def alloc_temp(self, node: ast.AST) -> int:
        if not self.free_temps:
            raise _fail(node, "expression too deep for the register allocator")
        return self.free_temps.pop()

    def free_temp(self, reg: int) -> None:
        if reg in self._temp_pool:
            self.free_temps.append(reg)

    def _read_var(self, name: str, node: ast.AST) -> int:
        """Load a local into a fresh temp (register copy or frame load)."""
        reg = self.alloc_temp(node)
        home = self.reg_locals.get(name)
        if home is not None:
            self.emit("addi", rd=reg, ra=home, imm=0)
        else:
            self.emit("lw", rd=reg, ra=REG_FP, imm=self.slot_of(name, node))
        return reg

    def _write_var(self, name: str, value_reg: int, node: ast.AST) -> None:
        """Store a register into a local's home (register or frame slot).

        When the value was just produced into an expression temporary by
        the immediately-preceding instruction, that instruction is
        retargeted at the home register instead of emitting a move —
        the classic "write into the destination" a compiler's register
        allocator performs.
        """
        home = self.reg_locals.get(name)
        if home is not None:
            if self.instrs and value_reg in self._temp_pool:
                last = self.instrs[-1]
                writes_reg = (last.spec.fmt in ("rrr", "rri", "ri")
                              or last.op == "lw")
                if writes_reg and last.rd == value_reg:
                    self.instrs[-1] = dataclasses.replace(last, rd=home)
                    return
            self.emit("addi", rd=home, ra=value_reg, imm=0)
        else:
            self.emit("sw", rd=value_reg, ra=REG_FP,
                      imm=self.slot_of(name, node))

    def slot_of(self, name: str, node: ast.AST) -> int:
        try:
            return self.slots[name]
        except KeyError:
            raise _fail(node, f"unknown variable {name!r} (globals are not "
                              f"supported; pass values as parameters)")

    # -- local discovery ---------------------------------------------------

    def _collect_locals(self) -> None:
        args = self.node.args
        if args.vararg or args.kwarg or args.kwonlyargs or args.posonlyargs:
            raise _fail(self.node, "only plain positional parameters are supported")
        if args.defaults:
            raise _fail(self.node, "default parameter values are not supported")
        self.params = [a.arg for a in args.args]
        if len(self.params) > MAX_REG_ARGS:
            raise _fail(self.node,
                        f"at most {MAX_REG_ARGS} parameters are supported")
        names: List[str] = list(self.params)
        self.for_stop_slots: Dict[int, str] = {}
        weights: Dict[str, float] = {name: 1.0 for name in names}

        def visit(stmt: ast.stmt, depth: int) -> None:
            if isinstance(stmt, ast.FunctionDef) and stmt is not self.node:
                raise _fail(stmt, "nested function definitions are not supported")
            targets: List[ast.expr] = []
            inner_depth = depth
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AugAssign):
                targets = [stmt.target]
            elif isinstance(stmt, (ast.For, ast.While)):
                inner_depth = depth + 1
                if isinstance(stmt, ast.For):
                    targets = [stmt.target]
                    # A hidden local caches the loop bound so it is
                    # evaluated once, exactly like Python's range(); it
                    # is compared every iteration, so weight it hot.
                    hidden = f"__stop{len(self.for_stop_slots)}"
                    self.for_stop_slots[id(stmt)] = hidden
                    names.append(hidden)
                    weights[hidden] = 4.0 ** inner_depth
            for target in targets:
                if isinstance(target, ast.Name):
                    if target.id not in weights:
                        names.append(target.id)
                        weights[target.id] = 0.0
                    weights[target.id] += 4.0 ** inner_depth
            # Weight name reads in this statement's own expressions only;
            # nested statements are weighted by the recursion below.
            own_exprs: List[ast.expr] = []
            for _field, value in ast.iter_fields(stmt):
                if isinstance(value, ast.expr):
                    own_exprs.append(value)
                elif isinstance(value, list):
                    own_exprs.extend(v for v in value if isinstance(v, ast.expr))
            for expr_root in own_exprs:
                for expr in ast.walk(expr_root):
                    if (isinstance(expr, ast.Name)
                            and isinstance(expr.ctx, ast.Load)
                            and expr.id in weights):
                        weights[expr.id] += 4.0 ** inner_depth
            for field in ("body", "orelse"):
                for inner in getattr(stmt, field, []) or []:
                    if isinstance(inner, ast.stmt):
                        visit(inner, inner_depth)

        for stmt in self.node.body:
            visit(stmt, 0)

        # Frame slots 0 and 1 hold the saved lr / fp; every local keeps a
        # slot (register locals use theirs for the callee-save area).
        self.slots = {name: 2 + i for i, name in enumerate(names)}
        self.frame_size = 2 + len(names)

        # Promote the hottest locals to the callee-saved registers.
        ranked = sorted(names, key=lambda n: (-weights.get(n, 0.0),
                                              names.index(n)))
        for offset, name in enumerate(ranked[:_LOCAL_BUDGET]):
            self.reg_locals[name] = REG_TMP_FIRST + offset

    # -- top level -----------------------------------------------------------

    def compile(self) -> None:
        self.mark(self.name)
        # prologue: frame, callee-saves of promoted locals, argument moves
        self.emit("addi", rd=REG_SP, ra=REG_SP, imm=-self.frame_size)
        self.emit("sw", rd=REG_LR, ra=REG_SP, imm=0)
        self.emit("sw", rd=REG_FP, ra=REG_SP, imm=1)
        self.emit("addi", rd=REG_FP, ra=REG_SP, imm=0)
        for name, reg in self.reg_locals.items():
            self.emit("sw", rd=reg, ra=REG_FP, imm=self.slots[name])
        for index, param in enumerate(self.params):
            home = self.reg_locals.get(param)
            if home is not None:
                self.emit("addi", rd=home, ra=REG_ARG_FIRST + index, imm=0)
            else:
                self.emit("sw", rd=REG_ARG_FIRST + index, ra=REG_FP,
                          imm=self.slots[param])

        for stmt in self.node.body:
            self.compile_stmt(stmt)

        # implicit `return 0`
        self.emit("addi", rd=REG_RV, ra=REG_ZERO, imm=0)
        self.mark(f"{self.name}.__ret")
        self._emit_epilogue()

    def _emit_epilogue(self) -> None:
        for name, reg in self.reg_locals.items():
            self.emit("lw", rd=reg, ra=REG_FP, imm=self.slots[name])
        self.emit("lw", rd=REG_LR, ra=REG_FP, imm=0)
        self.emit("addi", rd=REG_SP, ra=REG_FP, imm=self.frame_size)
        self.emit("lw", rd=REG_FP, ra=REG_FP, imm=1)
        self.emit("jalr", ra=REG_LR)

    # -- statements ------------------------------------------------------------

    def compile_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._compile_assign(stmt)
        elif isinstance(stmt, ast.AugAssign):
            self._compile_aug_assign(stmt)
        elif isinstance(stmt, ast.If):
            self._compile_if(stmt)
        elif isinstance(stmt, ast.While):
            self._compile_while(stmt)
        elif isinstance(stmt, ast.For):
            self._compile_for(stmt)
        elif isinstance(stmt, ast.Return):
            self._compile_return(stmt)
        elif isinstance(stmt, ast.Expr):
            self._compile_expr_stmt(stmt)
        elif isinstance(stmt, ast.Break):
            if not self.loop_stack:
                raise _fail(stmt, "break outside a loop")
            self.emit("j", target=self.loop_stack[-1][1])
        elif isinstance(stmt, ast.Continue):
            if not self.loop_stack:
                raise _fail(stmt, "continue outside a loop")
            self.emit("j", target=self.loop_stack[-1][0])
        elif isinstance(stmt, ast.Pass):
            pass
        else:
            raise _fail(stmt, f"unsupported statement {type(stmt).__name__}")

    def _compile_assign(self, stmt: ast.Assign) -> None:
        if len(stmt.targets) != 1:
            raise _fail(stmt, "chained assignment is not supported")
        target = stmt.targets[0]
        value_reg = self.compile_expr(stmt.value)
        self._store_to_target(target, value_reg)
        self.free_temp(value_reg)

    def _store_to_target(self, target: ast.expr, value_reg: int) -> None:
        if isinstance(target, ast.Name):
            self._write_var(target.id, value_reg, target)
            return
        if isinstance(target, ast.Subscript):
            address_reg = self._compile_address(target)
            self.emit("sw", rd=value_reg, ra=address_reg, imm=0)
            self.free_temp(address_reg)
            return
        raise _fail(target, f"unsupported assignment target "
                            f"{type(target).__name__}")

    def _compile_aug_assign(self, stmt: ast.AugAssign) -> None:
        # Desugar `target op= value` into `target = target op value`.
        load = ast.copy_location(
            ast.Subscript(value=stmt.target.value, slice=stmt.target.slice,
                          ctx=ast.Load())
            if isinstance(stmt.target, ast.Subscript)
            else ast.Name(id=stmt.target.id, ctx=ast.Load()),
            stmt,
        ) if isinstance(stmt.target, (ast.Subscript, ast.Name)) else None
        if load is None:
            raise _fail(stmt.target, "unsupported augmented-assignment target")
        combined = ast.copy_location(
            ast.BinOp(left=load, op=stmt.op, right=stmt.value), stmt
        )
        ast.fix_missing_locations(combined)
        value_reg = self.compile_expr(combined)
        self._store_to_target(stmt.target, value_reg)
        self.free_temp(value_reg)

    def _compile_if(self, stmt: ast.If) -> None:
        then_label = self.fresh_label("then")
        else_label = self.fresh_label("else")
        end_label = self.fresh_label("endif")
        self.compile_branch(stmt.test, then_label, else_label)
        self.mark(then_label)
        for inner in stmt.body:
            self.compile_stmt(inner)
        self.emit("j", target=end_label)
        self.mark(else_label)
        for inner in stmt.orelse:
            self.compile_stmt(inner)
        self.mark(end_label)

    def _compile_while(self, stmt: ast.While) -> None:
        if stmt.orelse:
            raise _fail(stmt.orelse[0], "while/else is not supported")
        for sub in ast.walk(stmt.test):
            if isinstance(sub, ast.Call):
                raise _fail(sub, "function calls in while conditions are "
                                 "not supported (evaluate into a variable)")
        top = self.fresh_label("while")
        body = self.fresh_label("wbody")
        end = self.fresh_label("wend")
        self.mark(top)
        self.compile_branch(stmt.test, body, end)
        self.mark(body)
        self.loop_stack.append((top, end))
        for inner in stmt.body:
            self.compile_stmt(inner)
        self.loop_stack.pop()
        self.emit("j", target=top)
        self.mark(end)

    def _compile_for(self, stmt: ast.For) -> None:
        if stmt.orelse:
            raise _fail(stmt.orelse[0], "for/else is not supported")
        if not isinstance(stmt.target, ast.Name):
            raise _fail(stmt.target, "for target must be a simple name")
        call = stmt.iter
        if not (isinstance(call, ast.Call) and isinstance(call.func, ast.Name)
                and call.func.id in _RANGE_NAMES):
            raise _fail(stmt.iter,
                        "for loops must iterate over range()/arange()")
        args = call.args
        if not 1 <= len(args) <= 3:
            raise _fail(call, "range() takes 1 to 3 arguments")

        step = 1
        if len(args) == 3:
            step = self._try_fold(args[2])
            if not isinstance(step, int) or step == 0:
                raise _fail(args[2],
                            "range step must be a non-zero integer constant")
        if len(args) == 1:
            start_node: Optional[ast.expr] = None
            stop_node = args[0]
        else:
            start_node, stop_node = args[0], args[1]

        var_name = stmt.target.id
        stop_name = self.for_stop_slots[id(stmt)]

        # i = start
        if start_node is None:
            self._write_var(var_name, REG_ZERO, stmt)
        else:
            start_reg = self.compile_expr(start_node)
            self._write_var(var_name, start_reg, stmt)
            self.free_temp(start_reg)
        # The bound is evaluated once into a hidden local, exactly like
        # Python's range().
        stop_reg = self.compile_expr(stop_node)
        self._write_var(stop_name, stop_reg, stmt)
        self.free_temp(stop_reg)

        top = self.fresh_label("for")
        body = self.fresh_label("fbody")
        step_label = self.fresh_label("fstep")
        end = self.fresh_label("fend")

        var_home = self.reg_locals.get(var_name)
        stop_home = self.reg_locals.get(stop_name)
        branch = "blt" if step > 0 else "bgt"

        self.mark(top)
        if var_home is not None and stop_home is not None:
            # Hot path: both in registers — compare them directly.
            self.emit(branch, ra=var_home, rb=stop_home, target=body)
            self.emit("j", target=end)
        else:
            i_reg = self._read_var(var_name, stmt)
            s_reg = self._read_var(stop_name, stmt)
            self.emit(branch, ra=i_reg, rb=s_reg, target=body)
            self.emit("j", target=end)
            self.free_temp(s_reg)
            self.free_temp(i_reg)

        self.mark(body)
        self.loop_stack.append((step_label, end))
        for inner in stmt.body:
            self.compile_stmt(inner)
        self.loop_stack.pop()

        self.mark(step_label)
        if var_home is not None:
            self.emit("addi", rd=var_home, ra=var_home, imm=step)
        else:
            i_reg = self._read_var(var_name, stmt)
            self.emit("addi", rd=i_reg, ra=i_reg, imm=step)
            self._write_var(var_name, i_reg, stmt)
            self.free_temp(i_reg)
        self.emit("j", target=top)
        self.mark(end)

    def _compile_return(self, stmt: ast.Return) -> None:
        if stmt.value is None:
            self.emit("addi", rd=REG_RV, ra=REG_ZERO, imm=0)
        else:
            value_reg = self.compile_expr(stmt.value)
            self.emit("addi", rd=REG_RV, ra=value_reg, imm=0)
            self.free_temp(value_reg)
        self.emit("j", target=f"{self.name}.__ret")

    def _compile_expr_stmt(self, stmt: ast.Expr) -> None:
        value = stmt.value
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            return  # docstring
        if isinstance(value, ast.Call):
            reg = self._compile_call(value)
            self.free_temp(reg)
            return
        raise _fail(stmt.value, "expression statements must be calls")

    # -- conditions ---------------------------------------------------------------

    def compile_branch(self, test: ast.expr, true_label: str,
                       false_label: str) -> None:
        if isinstance(test, ast.BoolOp):
            if isinstance(test.op, ast.And):
                for value in test.values[:-1]:
                    step = self.fresh_label("and")
                    self.compile_branch(value, step, false_label)
                    self.mark(step)
                self.compile_branch(test.values[-1], true_label, false_label)
            else:  # Or
                for value in test.values[:-1]:
                    step = self.fresh_label("or")
                    self.compile_branch(value, true_label, step)
                    self.mark(step)
                self.compile_branch(test.values[-1], true_label, false_label)
            return
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            self.compile_branch(test.operand, false_label, true_label)
            return
        if isinstance(test, ast.Compare):
            if len(test.ops) != 1:
                raise _fail(test, "chained comparisons are not supported")
            op_type = type(test.ops[0])
            branch = _BRANCHES.get(op_type)
            if branch is None:
                raise _fail(test, f"unsupported comparison {op_type.__name__}")
            left = self.compile_expr(test.left)
            right = self.compile_expr(test.comparators[0])
            self.emit(branch, ra=left, rb=right, target=true_label)
            self.emit("j", target=false_label)
            self.free_temp(right)
            self.free_temp(left)
            return
        if isinstance(test, ast.Constant):
            self.emit("j", target=true_label if test.value else false_label)
            return
        # generic truthiness
        reg = self.compile_expr(test)
        self.emit("bne", ra=reg, rb=REG_ZERO, target=true_label)
        self.emit("j", target=false_label)
        self.free_temp(reg)

    # -- expressions -----------------------------------------------------------------

    def _try_fold(self, node: ast.expr) -> Optional[int]:
        """Evaluate constant-only subexpressions at compile time."""
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return int(node.value)
            return node.value if isinstance(node.value, int) else None
        if isinstance(node, ast.Name):
            value = self.globals.get(node.id) if node.id not in self.slots else None
            if isinstance(value, int) and not isinstance(value, bool):
                return value
            return None
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.Invert, ast.UAdd)):
            inner = self._try_fold(node.operand)
            if inner is None:
                return None
            if isinstance(node.op, ast.USub):
                return -inner
            if isinstance(node.op, ast.Invert):
                return ~inner
            return inner
        if isinstance(node, ast.BinOp) and type(node.op) in _BINOPS:
            left = self._try_fold(node.left)
            right = self._try_fold(node.right)
            if left is None or right is None:
                return None
            try:
                import operator as _pyop
                fold_ops = {
                    ast.Add: _pyop.add, ast.Sub: _pyop.sub, ast.Mult: _pyop.mul,
                    ast.FloorDiv: _pyop.floordiv, ast.Mod: _pyop.mod,
                    ast.LShift: _pyop.lshift, ast.RShift: _pyop.rshift,
                    ast.BitAnd: _pyop.and_, ast.BitOr: _pyop.or_,
                    ast.BitXor: _pyop.xor,
                }
                return fold_ops[type(node.op)](left, right)
            except (ZeroDivisionError, ValueError):
                return None
        return None

    def compile_expr(self, node: ast.expr) -> int:
        folded = self._try_fold(node)
        if folded is not None and not isinstance(node, ast.Constant):
            reg = self.alloc_temp(node)
            self.emit("li", rd=reg, imm=folded)
            return reg
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                value = int(node.value)
            elif isinstance(node.value, int):
                value = node.value
            else:
                raise _fail(node, f"unsupported constant {node.value!r} "
                                  f"(integers only)")
            reg = self.alloc_temp(node)
            self.emit("li", rd=reg, imm=value)
            return reg
        if isinstance(node, ast.Name):
            if node.id not in self.slots:
                # Module-level integer constants (Q_ONE-style named
                # parameters) compile to immediates, as a C compiler
                # folds #define'd constants.
                value = self.globals.get(node.id)
                if isinstance(value, int) and not isinstance(value, bool):
                    reg = self.alloc_temp(node)
                    self.emit("li", rd=reg, imm=value)
                    return reg
            return self._read_var(node.id, node)
        if isinstance(node, ast.BinOp):
            return self._compile_binop(node)
        if isinstance(node, ast.UnaryOp):
            return self._compile_unary(node)
        if isinstance(node, ast.Compare):
            return self._compile_compare_value(node)
        if isinstance(node, ast.BoolOp):
            return self._compile_boolop_value(node)
        if isinstance(node, ast.Subscript):
            address_reg = self._compile_address(node)
            self.emit("lw", rd=address_reg, ra=address_reg, imm=0)
            return address_reg
        if isinstance(node, ast.Call):
            return self._compile_call(node)
        raise _fail(node, f"unsupported expression {type(node).__name__}")

    def _register_needs(self, node: ast.expr) -> int:
        """Sethi-Ullman register-need estimate for evaluation ordering."""
        if isinstance(node, (ast.Constant, ast.Name)):
            return 1
        if isinstance(node, ast.BinOp):
            left = self._register_needs(node.left)
            right = self._register_needs(node.right)
            if isinstance(node.right, ast.Constant):
                return max(left, 1)
            return max(left, right) if left != right else left + 1
        if isinstance(node, ast.UnaryOp):
            return self._register_needs(node.operand)
        if isinstance(node, ast.Subscript):
            base = self._register_needs(node.value)
            index = self._register_needs(node.slice) if isinstance(
                node.slice, ast.expr) else 1
            return max(base, index + 1)
        # Comparisons / bool ops / calls: conservative small estimate.
        return 2

    def _compile_binop(self, node: ast.BinOp) -> int:
        op_type = type(node.op)
        opcode = _BINOPS.get(op_type)
        if opcode is None:
            raise _fail(node, f"unsupported operator {op_type.__name__} "
                              f"(use // for integer division)")
        right_node = node.right
        # immediate forms for constant right operands (incl. folded ones)
        folded_right = self._try_fold(right_node)
        if folded_right is not None:
            left = self.compile_expr(node.left)
            imm = folded_right
            if op_type in _IMM_BINOPS:
                self.emit(_IMM_BINOPS[op_type], rd=left, ra=left, imm=imm)
                return left
            if op_type is ast.Sub:
                self.emit("addi", rd=left, ra=left, imm=-imm)
                return left
            right = self.alloc_temp(right_node)
            self.emit("li", rd=right, imm=imm)
        elif (self._register_needs(right_node)
                > self._register_needs(node.left)):
            # Evaluate the deeper operand first (Sethi-Ullman) to keep
            # peak register pressure minimal.
            right = self.compile_expr(right_node)
            left = self.compile_expr(node.left)
        else:
            left = self.compile_expr(node.left)
            right = self.compile_expr(right_node)
        self.emit(opcode, rd=left, ra=left, rb=right)
        self.free_temp(right)
        return left

    def _compile_unary(self, node: ast.UnaryOp) -> int:
        if isinstance(node.op, ast.USub):
            reg = self.compile_expr(node.operand)
            self.emit("sub", rd=reg, ra=REG_ZERO, rb=reg)
            return reg
        if isinstance(node.op, ast.Invert):
            reg = self.compile_expr(node.operand)
            self.emit("xori", rd=reg, ra=reg, imm=-1)
            return reg
        if isinstance(node.op, ast.Not):
            reg = self.compile_expr(node.operand)
            self.emit("seq", rd=reg, ra=reg, rb=REG_ZERO)
            return reg
        if isinstance(node.op, ast.UAdd):
            return self.compile_expr(node.operand)
        raise _fail(node, f"unsupported unary {type(node.op).__name__}")

    def _compile_compare_value(self, node: ast.Compare) -> int:
        if len(node.ops) != 1:
            raise _fail(node, "chained comparisons are not supported")
        op_type = type(node.ops[0])
        spec = _SETS.get(op_type)
        if spec is None:
            raise _fail(node, f"unsupported comparison {op_type.__name__}")
        opcode, swap = spec
        left = self.compile_expr(node.left)
        right = self.compile_expr(node.comparators[0])
        if swap:
            left, right = right, left
        self.emit(opcode, rd=left, ra=left, rb=right)
        self.free_temp(right)
        return left

    def _compile_boolop_value(self, node: ast.BoolOp) -> int:
        reg = self.alloc_temp(node)
        true_label = self.fresh_label("btrue")
        false_label = self.fresh_label("bfalse")
        end_label = self.fresh_label("bend")
        self.compile_branch(node, true_label, false_label)
        self.mark(true_label)
        self.emit("li", rd=reg, imm=1)
        self.emit("j", target=end_label)
        self.mark(false_label)
        self.emit("li", rd=reg, imm=0)
        self.mark(end_label)
        return reg

    def _compile_address(self, node: ast.Subscript) -> int:
        """Address of ``base[index]`` into a temp register."""
        if isinstance(node.slice, ast.Slice):
            raise _fail(node, "slicing is not supported")
        base = self.compile_expr(node.value)
        index = self.compile_expr(node.slice)
        self.emit("add", rd=base, ra=base, rb=index)
        self.free_temp(index)
        return base

    def _compile_call(self, node: ast.Call) -> int:
        if node.keywords:
            raise _fail(node, "keyword arguments are not supported")
        func = node.func
        if not isinstance(func, ast.Name):
            raise _fail(node, "only direct function calls are supported")
        name = func.id

        if name == _AINT_NAME:
            if len(node.args) != 1:
                raise _fail(node, f"{_AINT_NAME}(x) takes exactly one argument")
            return self.compile_expr(node.args[0])

        if name == _ALLOC_NAME:
            if len(node.args) != 1:
                raise _fail(node, f"{_ALLOC_NAME}(n) takes exactly one argument")
            size = self.compile_expr(node.args[0])
            reg = self.alloc_temp(node)
            self.emit("addi", rd=reg, ra=REG_HP, imm=0)
            self.emit("add", rd=REG_HP, ra=REG_HP, rb=size)
            self.free_temp(size)
            return reg

        if name in _RANGE_NAMES:
            raise _fail(node, "range()/arange() may only appear as a for-loop "
                              "iterator")
        label = self.known.get(name)
        if label is None:
            raise _fail(node, f"call to unknown function {name!r}; include it "
                              f"in compile_functions()")
        if len(node.args) > MAX_REG_ARGS:
            raise _fail(node, f"at most {MAX_REG_ARGS} call arguments supported")

        # Thanks to hoisting, argument expressions contain no calls, so
        # they never clobber the argument registers being filled.
        for index, arg in enumerate(node.args):
            arg_reg = self.compile_expr(arg)
            self.emit("addi", rd=REG_ARG_FIRST + index, ra=arg_reg, imm=0)
            self.free_temp(arg_reg)
        # Register locals are callee-saved (the callee's prologue saves
        # any it uses), so nothing needs spilling at the call site.
        self.emit("jal", target=label)
        reg = self.alloc_temp(node)
        self.emit("addi", rd=reg, ra=REG_RV, imm=0)
        return reg


def optimize_local_reuse(instructions: List[Instr],
                         label_positions: "set[int]") -> List[Instr]:
    """Basic-block local-value reuse (a light -O1 pass).

    Within a basic block, a frame slot freshly stored from (or loaded
    into) a register can satisfy later loads with a register move
    instead of a memory access.  Blocks are delimited by label positions
    and calls (callees clobber the temporaries).  Frame slots cannot be
    aliased by computed stores: scalars live only in the frame, arrays
    only in the data/heap region, so ``sw`` through a pointer never
    touches a cached slot.

    Without this pass the naive stack-machine code inflates exactly the
    costs the source-level model cannot see (every variable use = a
    reload), which is why the paper's optimized-compiler targets
    estimate better than a -O0 target would.
    """
    cache: Dict[int, int] = {}      # frame slot -> register holding it
    result: List[Instr] = []
    for index, instr in enumerate(instructions):
        if index in label_positions:
            cache.clear()
        op = instr.op
        if op == "lw" and instr.ra == REG_FP:
            slot = instr.imm
            destination = instr.rd
            held = cache.get(slot)
            if held is not None:
                instr = Instr("addi", rd=destination, ra=held, imm=0)
            # destination now holds the slot value; drop stale entries
            cache = {s: r for s, r in cache.items() if r != destination}
            cache[slot] = destination
            result.append(instr)
            continue
        if op == "sw" and instr.ra == REG_FP:
            cache = {s: r for s, r in cache.items() if s != instr.imm}
            cache[instr.imm] = instr.rd
            result.append(instr)
            continue
        if op in ("jal", "jalr"):
            cache.clear()
            result.append(instr)
            continue
        # Any other register write invalidates cache entries in that reg.
        fmt = instr.spec.fmt
        if fmt in ("rrr", "rri", "ri") or op == "lw":
            cache = {s: r for s, r in cache.items() if r != instr.rd}
        result.append(instr)
    return result


def _function_ast(fn: Callable) -> "tuple[ast.FunctionDef, dict]":
    fn = inspect.unwrap(fn)
    try:
        source = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError) as exc:
        raise CompileError(f"cannot obtain source of {fn!r}: {exc}") from exc
    module = ast.parse(source)
    for node in module.body:
        if isinstance(node, ast.FunctionDef):
            node.decorator_list = []
            return node, getattr(fn, "__globals__", {})
    raise CompileError(f"no function definition found in source of {fn!r}")


def compile_functions(functions: Sequence[Callable],
                      entry: Optional[Callable] = None) -> Program:
    """Compile a set of Python functions into one OR-lite program.

    The entry function (default: the first) is labelled with its own
    name; the runtime jumps there.  All cross-calls must target
    functions in ``functions``.
    """
    if not functions:
        raise CompileError("compile_functions needs at least one function")
    nodes = []
    known: Dict[str, str] = {}
    for fn in functions:
        node, fn_globals = _function_ast(fn)
        if node.name in known:
            raise CompileError(f"duplicate function name {node.name!r}")
        known[node.name] = node.name
        nodes.append((node, fn_globals))

    hoister = _CallHoister()
    instructions: List[Instr] = []
    labels: Dict[str, int] = {}
    order = list(nodes)
    if entry is not None:
        entry_name = inspect.unwrap(entry).__name__
        order.sort(key=lambda pair: 0 if pair[0].name == entry_name else 1)

    for node, fn_globals in order:
        node = hoister.visit_FunctionDef(node)
        ast.fix_missing_locations(node)
        fc = _FunctionCompiler(node, known, fn_globals)
        fc.compile()
        optimized = optimize_local_reuse(fc.instrs, set(fc.labels.values()))
        base = len(instructions)
        for label, index in fc.labels.items():
            labels[label] = base + index
        instructions.extend(optimized)

    return resolve(instructions, labels)
