"""Two-pass assembler for OR-lite.

Accepts the textual syntax printed by :class:`~repro.iss.isa.Instr`
(plus labels ``name:`` and ``;``/``#`` comments) and produces a
:class:`Program` with branch/jump targets resolved to absolute
instruction indices.  The compiler emits :class:`Instr` objects
directly; the assembler exists for handwritten tests, microbenchmarks
and debugging dumps.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Dict, List

from ..errors import IssError
from .isa import Instr, OPCODES


@dataclasses.dataclass
class Program:
    """Resolved instructions plus label → index map."""

    instructions: List[Instr]
    labels: Dict[str, int]

    def entry(self, label: str = "") -> int:
        if not label:
            return 0
        try:
            return self.labels[label]
        except KeyError:
            raise IssError(f"program has no label {label!r}") from None

    def listing(self) -> str:
        """Disassembly with addresses and labels."""
        by_index: Dict[int, List[str]] = {}
        for name, index in self.labels.items():
            by_index.setdefault(index, []).append(name)
        lines = []
        for index, instr in enumerate(self.instructions):
            for name in by_index.get(index, []):
                lines.append(f"{name}:")
            lines.append(f"  {index:4d}: {instr}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.instructions)


_LABEL_RE = re.compile(r"^([A-Za-z_][\w.$]*):$")
_REG_RE = re.compile(r"^r(\d+)$")
_MEM_RE = re.compile(r"^(-?\d+)\(r(\d+)\)$")


def _parse_reg(token: str, line: str) -> int:
    match = _REG_RE.match(token)
    if not match:
        raise IssError(f"expected register, got {token!r} in {line!r}")
    return int(match.group(1))


def _parse_imm(token: str, line: str) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise IssError(f"expected immediate, got {token!r} in {line!r}") from None


def assemble(source: str) -> Program:
    """Assemble textual source into a resolved :class:`Program`."""
    pending: List[Instr] = []
    labels: Dict[str, int] = {}

    for raw in source.splitlines():
        line = raw.split(";")[0].split("#")[0].strip()
        if not line:
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            name = label_match.group(1)
            if name in labels:
                raise IssError(f"duplicate label {name!r}")
            labels[name] = len(pending)
            continue
        pending.append(_parse_instruction(line))

    return resolve(pending, labels)


def _parse_instruction(line: str) -> Instr:
    parts = line.replace(",", " ").split()
    op = parts[0]
    spec = OPCODES.get(op)
    if spec is None:
        raise IssError(f"unknown opcode {op!r} in {line!r}")
    args = parts[1:]
    fmt = spec.fmt

    def need(count: int):
        if len(args) != count:
            raise IssError(
                f"{op} expects {count} operands, got {len(args)} in {line!r}"
            )

    if fmt == "rrr":
        need(3)
        return Instr(op, rd=_parse_reg(args[0], line),
                     ra=_parse_reg(args[1], line), rb=_parse_reg(args[2], line))
    if fmt == "rri":
        need(3)
        return Instr(op, rd=_parse_reg(args[0], line),
                     ra=_parse_reg(args[1], line), imm=_parse_imm(args[2], line))
    if fmt == "ri":
        need(2)
        return Instr(op, rd=_parse_reg(args[0], line),
                     imm=_parse_imm(args[1], line))
    if fmt == "mem":
        need(2)
        mem = _MEM_RE.match(args[1])
        if not mem:
            raise IssError(f"expected imm(rN) operand in {line!r}")
        return Instr(op, rd=_parse_reg(args[0], line),
                     ra=int(mem.group(2)), imm=int(mem.group(1)))
    if fmt == "bra":
        need(3)
        return Instr(op, ra=_parse_reg(args[0], line),
                     rb=_parse_reg(args[1], line), target=args[2])
    if fmt == "jmp":
        need(1)
        return Instr(op, target=args[0])
    if fmt == "r":
        need(1)
        return Instr(op, ra=_parse_reg(args[0], line))
    if fmt == "none":
        need(0)
        return Instr(op)
    raise IssError(f"unhandled format {fmt!r} for {op}")  # pragma: no cover


def resolve(instructions: List[Instr], labels: Dict[str, int]) -> Program:
    """Resolve symbolic targets to absolute indices."""
    resolved: List[Instr] = []
    for instr in instructions:
        if instr.target is None:
            resolved.append(instr)
            continue
        try:
            index = labels[instr.target]
        except KeyError:
            raise IssError(f"undefined label {instr.target!r} in {instr}") from None
        resolved.append(dataclasses.replace(instr, imm=index, target=None))
    return Program(resolved, dict(labels))
