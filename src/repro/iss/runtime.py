"""Convenience runtime: compile, load, run, read back.

Hides the ABI plumbing (stack/heap setup, array marshalling) so that the
benchmarks can say::

    result = run_compiled([quick_sort], args=[data, 0, len(data) - 1])
    print(result.cycles)

Array arguments (lists or :class:`~repro.annotate.AArray`) are copied
into machine memory, passed as word pointers, and copied back after the
run so in-place algorithms (sorting!) behave as in Python.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence

from ..annotate.types import AArray, AInt, unwrap
from ..errors import IssError
from .assembler import Program
from .compiler import compile_functions
from .isa import Instr, REG_ARG_FIRST, REG_FP, REG_HP, REG_LR, REG_SP
from .machine import ICache, Machine, RunResult

#: First word used for static (argument) data.
_DATA_BASE = 64
#: Words reserved for the stack at the top of memory.
_STACK_MARGIN = 8


@dataclasses.dataclass
class IssResult:
    """Outcome of running a compiled kernel on the reference machine."""

    cycles: int
    instructions: int
    return_value: int
    icache_hits: int
    icache_misses: int

    @property
    def cpi(self) -> float:
        """Cycles per instruction."""
        return self.cycles / self.instructions if self.instructions else 0.0


def prepare_program(functions: Sequence[Callable],
                    entry: Optional[Callable] = None) -> Program:
    """Compile ``functions`` and append the runtime's halt stub."""
    program = compile_functions(functions, entry=entry)
    instructions = list(program.instructions)
    labels = dict(program.labels)
    labels["__halt"] = len(instructions)
    instructions.append(Instr("halt"))
    return Program(instructions, labels)


def run_program(program: Program, entry_label: str,
                args: Sequence = (),
                memory_words: int = 1 << 20,
                icache: Optional[ICache] = None,
                machine: Optional[Machine] = None) -> IssResult:
    """Run a prepared program from ``entry_label`` with ``args``.

    Integer arguments pass by value; list/AArray arguments pass as word
    pointers and are written back after execution.
    """
    if machine is None:
        machine = Machine(memory_words=memory_words, icache=icache)
    else:
        machine.reset()
        memory_words = machine.memory_words

    if len(args) > 6:
        raise IssError("at most 6 arguments are supported by the ABI")

    # Marshal arguments.
    stack_top = memory_words - _STACK_MARGIN
    data_cursor = _DATA_BASE
    writebacks: List[tuple] = []   # (container, base_address, length)
    for index, arg in enumerate(args):
        if isinstance(arg, (list, AArray)):
            values = arg.to_list() if isinstance(arg, AArray) else list(arg)
            values = [int(unwrap(v)) for v in values]
            if data_cursor + len(values) >= stack_top:
                raise IssError("argument data does not fit in machine memory")
            machine.write_block(data_cursor, values)
            machine.regs[REG_ARG_FIRST + index] = data_cursor
            writebacks.append((arg, data_cursor, len(values)))
            data_cursor += len(values)
        elif isinstance(arg, (int, AInt)):
            machine.regs[REG_ARG_FIRST + index] = int(unwrap(arg))
        else:
            raise IssError(
                f"unsupported argument type {type(arg).__name__} at "
                f"position {index}"
            )

    machine.regs[REG_SP] = stack_top
    machine.regs[REG_FP] = stack_top
    machine.regs[REG_HP] = data_cursor
    machine.regs[REG_LR] = program.entry("__halt")

    outcome: RunResult = machine.run(program, pc=program.entry(entry_label))

    # Write arrays back so in-place mutation is visible to the caller.
    for container, base, length in writebacks:
        values = machine.read_block(base, length)
        if isinstance(container, AArray):
            for i, value in enumerate(values):
                container._data[i] = value
        else:
            container[:] = values

    return IssResult(
        cycles=outcome.cycles,
        instructions=outcome.instructions,
        return_value=outcome.return_value,
        icache_hits=outcome.icache_hits,
        icache_misses=outcome.icache_misses,
    )


def run_compiled(functions: Sequence[Callable], args: Sequence = (),
                 entry: Optional[Callable] = None,
                 memory_words: int = 1 << 20,
                 icache: Optional[ICache] = None) -> IssResult:
    """One-shot helper: compile ``functions`` and run the entry with ``args``."""
    entry_fn = entry if entry is not None else functions[0]
    program = prepare_program(functions, entry=entry_fn)
    import inspect
    entry_label = inspect.unwrap(entry_fn).__name__
    return run_program(program, entry_label, args,
                       memory_words=memory_words, icache=icache)
