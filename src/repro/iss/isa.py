"""Instruction-set definition of the reference CPU ("OR-lite").

The paper validates its SW estimates against a cycle-accurate OpenRISC
architectural simulator.  OR-lite is our stand-in: a 32-register scalar
RISC in the OR1K mould with a classic cycle model (single-issue, 3-cycle
multiply, iterative divide, 2-cycle memory access, taken-branch bubble).
The exact figures matter less than their *structure* — the estimation
library's operator weights are calibrated against this machine just as
the paper's weights were derived from assembler-level analysis of the
real OpenRISC.

Conventions
-----------

========  =============================================
register  role
========  =============================================
r0        hard-wired zero
r1        stack pointer (grows downward)
r2        frame pointer
r3–r8     argument registers
r9        link register (return address)
r10       heap/bump-allocation pointer
r11       return value
r12–r25   expression temporaries (caller-clobbered)
r26–r31   reserved/scratch
========  =============================================

Memory is word-addressed (one 64-bit Python integer per address); the
compiler and runtime agree on this, and it spares the model irrelevant
byte-lane detail.  Integer division and remainder follow *Python*
semantics (floor division) so that compiled code, annotated code and
plain code agree bit-for-bit on negative operands.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

NUM_REGS = 32

REG_ZERO = 0
REG_SP = 1
REG_FP = 2
REG_ARG_FIRST = 3
REG_ARG_LAST = 8
REG_LR = 9
REG_HP = 10
REG_RV = 11
REG_TMP_FIRST = 12
REG_TMP_LAST = 25

#: Maximum number of register-passed arguments.
MAX_REG_ARGS = REG_ARG_LAST - REG_ARG_FIRST + 1


@dataclasses.dataclass(frozen=True)
class OpSpec:
    """Static properties of one opcode."""

    name: str
    fmt: str            # operand format, see _FORMATS below
    cycles: int         # base cycle cost
    taken_cycles: Optional[int] = None  # branches: cost when taken


# Operand formats:
#   rrr   op rd, ra, rb
#   rri   op rd, ra, imm
#   ri    op rd, imm
#   mem   op rd, imm(ra)      (lw)  /  op rs, imm(ra)   (sw)
#   bra   op ra, rb, label
#   jmp   op label
#   r     op ra
#   none  op
OPCODES = {spec.name: spec for spec in [
    # ALU register-register (1 cycle except multiply/divide)
    OpSpec("add", "rrr", 1), OpSpec("sub", "rrr", 1),
    OpSpec("mul", "rrr", 3),
    OpSpec("div", "rrr", 32), OpSpec("rem", "rrr", 32),
    OpSpec("and", "rrr", 1), OpSpec("or", "rrr", 1), OpSpec("xor", "rrr", 1),
    OpSpec("sll", "rrr", 1), OpSpec("srl", "rrr", 1), OpSpec("sra", "rrr", 1),
    OpSpec("slt", "rrr", 1), OpSpec("sle", "rrr", 1),
    OpSpec("seq", "rrr", 1), OpSpec("sne", "rrr", 1),
    # ALU register-immediate
    OpSpec("addi", "rri", 1), OpSpec("andi", "rri", 1),
    OpSpec("ori", "rri", 1), OpSpec("xori", "rri", 1),
    OpSpec("slli", "rri", 1), OpSpec("srli", "rri", 1), OpSpec("srai", "rri", 1),
    OpSpec("slti", "rri", 1),
    # constants and moves
    OpSpec("li", "ri", 1),
    # memory (2-cycle data access)
    OpSpec("lw", "mem", 2), OpSpec("sw", "mem", 2),
    # control transfer (2-cycle pipeline refill when taken)
    OpSpec("beq", "bra", 1, taken_cycles=2),
    OpSpec("bne", "bra", 1, taken_cycles=2),
    OpSpec("blt", "bra", 1, taken_cycles=2),
    OpSpec("bge", "bra", 1, taken_cycles=2),
    OpSpec("bgt", "bra", 1, taken_cycles=2),
    OpSpec("ble", "bra", 1, taken_cycles=2),
    OpSpec("j", "jmp", 2), OpSpec("jal", "jmp", 2),
    OpSpec("jalr", "r", 2),
    OpSpec("halt", "none", 0),
]}


@dataclasses.dataclass(frozen=True)
class Instr:
    """One decoded instruction.

    ``target`` holds a label name until :func:`~repro.iss.assembler`
    resolution turns it into an absolute instruction index stored in
    ``imm``.
    """

    op: str
    rd: int = 0
    ra: int = 0
    rb: int = 0
    imm: int = 0
    target: Optional[str] = None

    def __post_init__(self):
        if self.op not in OPCODES:
            raise ValueError(f"unknown opcode {self.op!r}")
        for reg in (self.rd, self.ra, self.rb):
            if not 0 <= reg < NUM_REGS:
                raise ValueError(f"register r{reg} out of range in {self.op}")

    @property
    def spec(self) -> OpSpec:
        return OPCODES[self.op]

    def __str__(self) -> str:
        fmt = self.spec.fmt
        if fmt == "rrr":
            return f"{self.op} r{self.rd}, r{self.ra}, r{self.rb}"
        if fmt == "rri":
            return f"{self.op} r{self.rd}, r{self.ra}, {self.imm}"
        if fmt == "ri":
            return f"{self.op} r{self.rd}, {self.imm}"
        if fmt == "mem":
            return f"{self.op} r{self.rd}, {self.imm}(r{self.ra})"
        if fmt == "bra":
            dest = self.target if self.target is not None else self.imm
            return f"{self.op} r{self.ra}, r{self.rb}, {dest}"
        if fmt == "jmp":
            dest = self.target if self.target is not None else self.imm
            return f"{self.op} {dest}"
        if fmt == "r":
            return f"{self.op} r{self.ra}"
        return self.op


def mnemonic_reference() -> str:
    """A human-readable opcode table (documentation helper)."""
    lines = ["opcode  format  cycles  taken"]
    for spec in OPCODES.values():
        taken = spec.taken_cycles if spec.taken_cycles is not None else "-"
        lines.append(f"{spec.name:<7} {spec.fmt:<7} {spec.cycles:<7} {taken}")
    return "\n".join(lines)
