"""The OR-lite machine: execution loop and cycle accounting.

The machine is the reproduction's "cycle-accurate ISS": it executes a
resolved :class:`~repro.iss.assembler.Program` and counts cycles per the
:mod:`~repro.iss.isa` cost model, optionally through a direct-mapped
instruction cache (the paper's §1 discussion: caches are the classic
source of estimation error; the I-cache ablation quantifies it).

Memory is word-addressed; words hold unbounded Python integers.  This
deliberately ignores overflow — the annotated and plain runs of a
kernel use Python integers too, so all three backends agree exactly.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from ..errors import IssError
from .assembler import Program
from .isa import NUM_REGS, REG_ZERO


class DirectMappedCache:
    """A direct-mapped cache model shared by the I- and D-cache.

    Addresses are word indices (instruction index for the I-cache,
    memory word for the D-cache); a line holds ``line_words``
    consecutive words.  A miss costs ``miss_penalty`` cycles.
    """

    kind = "cache"

    def __init__(self, lines: int = 64, line_words: int = 4,
                 miss_penalty: int = 10):
        if lines <= 0 or line_words <= 0 or miss_penalty < 0:
            raise IssError(f"invalid {self.kind} geometry")
        self.lines = lines
        self.line_words = line_words
        self.miss_penalty = miss_penalty
        self._tags: List[Optional[int]] = [None] * lines
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> int:
        """Cycles added by accessing ``address``."""
        line_address = address // self.line_words
        index = line_address % self.lines
        if self._tags[index] == line_address:
            self.hits += 1
            return 0
        self._tags[index] = line_address
        self.misses += 1
        return self.miss_penalty

    def reset(self) -> None:
        self._tags = [None] * self.lines
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ICache(DirectMappedCache):
    """Instruction cache: addresses are instruction indices (PCs)."""

    kind = "i-cache"


class DCache(DirectMappedCache):
    """Data cache: addresses are memory word indices (write-allocate,
    write-through — a store misses like a load but data is always
    consistent in our single-master model)."""

    kind = "d-cache"


@dataclasses.dataclass
class RunResult:
    """Outcome of one machine run."""

    cycles: int
    instructions: int
    return_value: int
    icache_hits: int = 0
    icache_misses: int = 0


class Machine:
    """Executes OR-lite programs with per-instruction cycle counting."""

    def __init__(self, memory_words: int = 1 << 20,
                 icache: Optional[ICache] = None,
                 dcache: Optional[DCache] = None,
                 load_use_stall: bool = False):
        if memory_words <= 0:
            raise IssError("memory size must be positive")
        self.memory_words = memory_words
        self.memory: List[int] = [0] * memory_words
        self.regs: List[int] = [0] * NUM_REGS
        self.icache = icache
        self.dcache = dcache
        #: Model the classic single-issue load-use hazard: one bubble
        #: when an instruction reads the register a ``lw`` just wrote.
        self.load_use_stall = load_use_stall
        self.load_use_stalls = 0
        self.cycles = 0
        self.instructions = 0

    def reset(self) -> None:
        self.memory = [0] * self.memory_words
        self.regs = [0] * NUM_REGS
        self.cycles = 0
        self.instructions = 0
        if self.icache is not None:
            self.icache.reset()
        if self.dcache is not None:
            self.dcache.reset()

    # -- memory helpers (word addressed) ----------------------------------

    def _check_address(self, address: int) -> int:
        if not 0 <= address < self.memory_words:
            raise IssError(
                f"memory access out of range: address {address} "
                f"(memory is {self.memory_words} words)"
            )
        return address

    def read_word(self, address: int) -> int:
        return self.memory[self._check_address(address)]

    def write_word(self, address: int, value: int) -> None:
        self.memory[self._check_address(address)] = value

    def write_block(self, address: int, values) -> None:
        for offset, value in enumerate(values):
            self.write_word(address + offset, int(value))

    def read_block(self, address: int, count: int) -> List[int]:
        return [self.read_word(address + i) for i in range(count)]

    # -- execution ----------------------------------------------------------

    def run(self, program: Program, pc: int = 0,
            max_cycles: int = 500_000_000,
            profile: bool = False) -> RunResult:
        """Execute from ``pc`` until ``halt``; returns cycle statistics.

        ``max_cycles`` guards against runaway programs (a compiler or
        workload bug would otherwise hang the benchmark harness).
        With ``profile=True``, per-PC cycle counts are accumulated in
        :attr:`pc_cycles` (a dict), enabling function-level attribution
        via the program's label map.
        """
        instrs = program.instructions
        regs = self.regs
        memory = self.memory
        icache = self.icache
        dcache = self.dcache
        stall_on_load = self.load_use_stall
        loaded_reg: Optional[int] = None
        cycles = 0
        executed = 0
        n = len(instrs)
        if profile and not hasattr(self, "pc_cycles"):
            self.pc_cycles = {}

        while True:
            if not 0 <= pc < n:
                raise IssError(f"PC {pc} outside program (len {n})")
            cycles_before = cycles
            if icache is not None:
                cycles += icache.access(pc)
            instr = instrs[pc]
            op = instr.op
            spec = instr.spec
            if stall_on_load and loaded_reg is not None:
                # one-cycle bubble if this instruction consumes the
                # register the previous lw produced
                fmt = spec.fmt
                reads = ()
                if fmt in ("rrr", "bra"):
                    reads = (instr.ra, instr.rb)
                elif fmt in ("rri", "mem", "r"):
                    reads = (instr.ra,)
                if loaded_reg in reads:
                    cycles += 1
                    self.load_use_stalls += 1
                loaded_reg = None
            cycles += spec.cycles
            executed += 1
            if cycles > max_cycles:
                raise IssError(
                    f"cycle budget of {max_cycles} exceeded at pc={pc} ({instr})"
                )
            next_pc = pc + 1

            if op == "add":
                regs[instr.rd] = regs[instr.ra] + regs[instr.rb]
            elif op == "sub":
                regs[instr.rd] = regs[instr.ra] - regs[instr.rb]
            elif op == "mul":
                regs[instr.rd] = regs[instr.ra] * regs[instr.rb]
            elif op == "div":
                divisor = regs[instr.rb]
                if divisor == 0:
                    raise IssError(f"division by zero at pc={pc}")
                regs[instr.rd] = regs[instr.ra] // divisor
            elif op == "rem":
                divisor = regs[instr.rb]
                if divisor == 0:
                    raise IssError(f"remainder by zero at pc={pc}")
                regs[instr.rd] = regs[instr.ra] % divisor
            elif op == "and":
                regs[instr.rd] = regs[instr.ra] & regs[instr.rb]
            elif op == "or":
                regs[instr.rd] = regs[instr.ra] | regs[instr.rb]
            elif op == "xor":
                regs[instr.rd] = regs[instr.ra] ^ regs[instr.rb]
            elif op == "sll":
                regs[instr.rd] = regs[instr.ra] << regs[instr.rb]
            elif op in ("srl", "sra"):
                # Python ints are unbounded: logical and arithmetic right
                # shift coincide for the value semantics we model.
                regs[instr.rd] = regs[instr.ra] >> regs[instr.rb]
            elif op == "slt":
                regs[instr.rd] = 1 if regs[instr.ra] < regs[instr.rb] else 0
            elif op == "sle":
                regs[instr.rd] = 1 if regs[instr.ra] <= regs[instr.rb] else 0
            elif op == "seq":
                regs[instr.rd] = 1 if regs[instr.ra] == regs[instr.rb] else 0
            elif op == "sne":
                regs[instr.rd] = 1 if regs[instr.ra] != regs[instr.rb] else 0
            elif op == "addi":
                regs[instr.rd] = regs[instr.ra] + instr.imm
            elif op == "andi":
                regs[instr.rd] = regs[instr.ra] & instr.imm
            elif op == "ori":
                regs[instr.rd] = regs[instr.ra] | instr.imm
            elif op == "xori":
                regs[instr.rd] = regs[instr.ra] ^ instr.imm
            elif op == "slli":
                regs[instr.rd] = regs[instr.ra] << instr.imm
            elif op in ("srli", "srai"):
                regs[instr.rd] = regs[instr.ra] >> instr.imm
            elif op == "slti":
                regs[instr.rd] = 1 if regs[instr.ra] < instr.imm else 0
            elif op == "li":
                regs[instr.rd] = instr.imm
            elif op == "lw":
                address = regs[instr.ra] + instr.imm
                if not 0 <= address < self.memory_words:
                    raise IssError(f"lw out of range at pc={pc}: address {address}")
                if dcache is not None:
                    cycles += dcache.access(address)
                regs[instr.rd] = memory[address]
                if stall_on_load:
                    loaded_reg = instr.rd
            elif op == "sw":
                address = regs[instr.ra] + instr.imm
                if not 0 <= address < self.memory_words:
                    raise IssError(f"sw out of range at pc={pc}: address {address}")
                if dcache is not None:
                    cycles += dcache.access(address)
                memory[address] = regs[instr.rd]
            elif op in ("beq", "bne", "blt", "bge", "bgt", "ble"):
                a, b = regs[instr.ra], regs[instr.rb]
                taken = (
                    (op == "beq" and a == b) or (op == "bne" and a != b)
                    or (op == "blt" and a < b) or (op == "bge" and a >= b)
                    or (op == "bgt" and a > b) or (op == "ble" and a <= b)
                )
                if taken:
                    cycles += spec.taken_cycles - spec.cycles
                    next_pc = instr.imm
            elif op == "j":
                next_pc = instr.imm
            elif op == "jal":
                regs[9] = pc + 1
                next_pc = instr.imm
            elif op == "jalr":
                next_pc = regs[instr.ra]
            elif op == "halt":
                break
            else:  # pragma: no cover - OPCODES and this chain are in sync
                raise IssError(f"unimplemented opcode {op!r}")

            regs[REG_ZERO] = 0  # r0 is hard-wired
            if profile:
                self.pc_cycles[pc] = (
                    self.pc_cycles.get(pc, 0) + cycles - cycles_before
                )
            pc = next_pc

        regs[REG_ZERO] = 0
        self.cycles += cycles
        self.instructions += executed
        return RunResult(
            cycles=cycles,
            instructions=executed,
            return_value=regs[11],
            icache_hits=self.icache.hits if self.icache else 0,
            icache_misses=self.icache.misses if self.icache else 0,
        )
