"""The OR-lite reference ISS: ISA, assembler, machine, compiler, runtime."""

from .assembler import Program, assemble
from .compiler import compile_functions
from .isa import Instr, NUM_REGS, OPCODES, mnemonic_reference
from .machine import DCache, DirectMappedCache, ICache, Machine, RunResult
from .runtime import IssResult, prepare_program, run_compiled, run_program

__all__ = [
    "Program", "assemble",
    "compile_functions",
    "Instr", "NUM_REGS", "OPCODES", "mnemonic_reference",
    "DCache", "DirectMappedCache", "ICache", "Machine", "RunResult",
    "IssResult", "prepare_program", "run_compiled", "run_program",
]
