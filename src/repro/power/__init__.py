"""Energy estimation extension (activity-based, per-operation)."""

from .model import CPU_ENERGY, EnergyTable, HW_ENERGY, PowerBudget
from .report import EnergyReport, ProcessEnergy, estimate_energy

__all__ = [
    "CPU_ENERGY", "EnergyTable", "HW_ENERGY", "PowerBudget",
    "EnergyReport", "ProcessEnergy", "estimate_energy",
]
