"""Energy accounting over a finished strict-timed simulation."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional

from ..core.analysis import PerformanceLibrary
from ..errors import ReproError
from .model import CPU_ENERGY, EnergyTable, HW_ENERGY, PowerBudget


@dataclasses.dataclass(frozen=True)
class ProcessEnergy:
    """Dynamic energy attributed to one process."""

    process: str
    resource: str
    operations: int
    dynamic_pj: float


@dataclasses.dataclass(frozen=True)
class EnergyReport:
    """Per-process and per-resource energy totals."""

    processes: List[ProcessEnergy]
    resource_dynamic_pj: Dict[str, float]
    resource_static_pj: Dict[str, float]

    @property
    def total_pj(self) -> float:
        return (sum(self.resource_dynamic_pj.values())
                + sum(self.resource_static_pj.values()))

    @property
    def total_uj(self) -> float:
        return self.total_pj * 1e-6

    def render(self) -> str:
        lines = ["=== energy report ==="]
        for entry in self.processes:
            lines.append(
                f"  {entry.process:<24} on {entry.resource:<8} "
                f"{entry.operations:>10} ops  {entry.dynamic_pj / 1e6:10.3f} uJ"
            )
        lines.append("  -- per resource --")
        for name in sorted(self.resource_dynamic_pj):
            dynamic = self.resource_dynamic_pj[name] / 1e6
            static = self.resource_static_pj.get(name, 0.0) / 1e6
            lines.append(f"  {name:<24} dynamic {dynamic:10.3f} uJ   "
                         f"static {static:10.3f} uJ")
        lines.append(f"  total: {self.total_uj:.3f} uJ")
        return "\n".join(lines)


def estimate_energy(perf: PerformanceLibrary,
                    tables: Mapping[str, EnergyTable],
                    budgets: Optional[Mapping[str, PowerBudget]] = None
                    ) -> EnergyReport:
    """Build the energy report of an analysed, finished simulation.

    ``tables`` maps resource name → :class:`EnergyTable` (defaults are
    chosen by resource kind when a name is missing: sequential →
    :data:`CPU_ENERGY`, parallel → :data:`HW_ENERGY`).  ``budgets``
    optionally maps resource name → :class:`PowerBudget` for static
    power.
    """
    if not perf.contexts:
        raise ReproError(
            "estimate_energy needs an attached PerformanceLibrary with "
            "at least one analysed process"
        )
    budgets = budgets or {}
    resources_by_name = {r.name: r for r in perf.resources()}

    def table_for(resource) -> EnergyTable:
        if resource.name in tables:
            return tables[resource.name]
        return CPU_ENERGY if resource.kind == "sequential" else HW_ENERGY

    processes: List[ProcessEnergy] = []
    resource_dynamic: Dict[str, float] = {}
    # PerformanceLibrary keys contexts by pid and stats by full name in
    # the same insertion order.
    for (pid, context), (name, stats) in zip(
            perf.contexts.items(), perf.stats.items()):
        resource = resources_by_name[stats.resource]
        table = table_for(resource)
        dynamic = table.energy_pj(context.lifetime_op_counts)
        operations = sum(context.lifetime_op_counts.values())
        processes.append(ProcessEnergy(name, resource.name,
                                       operations, dynamic))
        resource_dynamic[resource.name] = (
            resource_dynamic.get(resource.name, 0.0) + dynamic
        )

    resource_static: Dict[str, float] = {}
    for name, resource in resources_by_name.items():
        budget = budgets.get(name)
        if budget is not None:
            resource_static[name] = budget.static_energy_pj(
                resource.busy_time.femtoseconds
            )
    return EnergyReport(processes, resource_dynamic, resource_static)
