"""Activity-based energy estimation (the paper's "consumption" axis).

The paper's introduction lists consumption next to time among the
performance parameters a system-level methodology must estimate; the
DATE-2004 library handled time only.  This extension closes that gap
with the same mechanism: the annotated types already count every
executed operation per process, so energy falls out of an
operation→energy characterization plus a static (leakage + clock tree)
power term integrated over resource busy time.

    E(process)  = Σ_op  count(op) * e_dynamic(op)
    E(resource) = Σ_processes E + P_static * busy_time

Like the timing weights, the energy-per-operation numbers would come
from the platform vendor; defaults for the two reference platforms are
provided in :data:`CPU_ENERGY` and :data:`HW_ENERGY`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping

from ..annotate.costs import KNOWN_OPERATIONS
from ..errors import AnnotationError


class EnergyTable:
    """Per-operation dynamic energy, in picojoules."""

    __slots__ = ("_table", "name")

    def __init__(self, table: Mapping[str, float], name: str = ""):
        unknown = set(table) - KNOWN_OPERATIONS
        if unknown:
            raise AnnotationError(
                f"unknown operations in energy table {name!r}: {sorted(unknown)}"
            )
        bad = {op: v for op, v in table.items() if v < 0}
        if bad:
            raise AnnotationError(f"negative energies in {name!r}: {bad}")
        self._table: Dict[str, float] = dict(table)
        self.name = name

    def get(self, operation: str) -> float:
        try:
            return self._table[operation]
        except KeyError:
            raise AnnotationError(
                f"energy table {self.name!r} has no entry for {operation!r}"
            ) from None

    def __contains__(self, operation: str) -> bool:
        return operation in self._table

    def energy_pj(self, op_counts: Mapping[str, int]) -> float:
        """Total dynamic energy for an operation-count histogram."""
        return sum(count * self.get(op) for op, count in op_counts.items())


#: A 130 nm-class embedded CPU: roughly equal op energies, memory and
#: long-latency operations costlier (values in pJ per operation).
CPU_ENERGY = EnergyTable({
    "add": 4.0, "sub": 4.0, "mul": 12.0, "div": 120.0, "mod": 120.0,
    "shl": 3.0, "shr": 3.0, "and": 3.0, "or": 3.0, "xor": 3.0,
    "neg": 4.0, "inv": 3.0, "abs": 5.0,
    "lt": 3.5, "le": 3.5, "gt": 3.5, "ge": 3.5, "eq": 3.5, "ne": 3.5,
    "load": 18.0, "store": 20.0,
    "assign": 2.0, "branch": 5.0, "call": 40.0,
    "fadd": 30.0, "fsub": 30.0, "fmul": 45.0, "fdiv": 160.0,
    "fneg": 6.0, "fabs": 6.0, "fcmp": 12.0,
}, name="cpu-130nm")

#: A dedicated datapath: cheaper per useful operation (no fetch/decode),
#: but memory ports still dominate.
HW_ENERGY = EnergyTable({
    "add": 1.2, "sub": 1.2, "mul": 6.0, "div": 60.0, "mod": 60.0,
    "shl": 0.2, "shr": 0.2, "and": 0.3, "or": 0.3, "xor": 0.3,
    "neg": 1.2, "inv": 0.3, "abs": 1.5,
    "lt": 0.8, "le": 0.8, "gt": 0.8, "ge": 0.8, "eq": 0.8, "ne": 0.8,
    "load": 10.0, "store": 12.0,
    "assign": 0.0, "branch": 0.0, "call": 0.0,
    "fadd": 9.0, "fsub": 9.0, "fmul": 16.0, "fdiv": 70.0,
    "fneg": 1.0, "fabs": 1.0, "fcmp": 3.0,
}, name="asic-datapath")


@dataclasses.dataclass(frozen=True)
class PowerBudget:
    """Static power of a resource, integrated over busy time."""

    static_mw: float = 0.0

    def static_energy_pj(self, busy_time_fs: int) -> float:
        # mW * fs = 1e-3 J/s * 1e-15 s = 1e-18 J = 1e-6 pJ
        return self.static_mw * busy_time_fs * 1e-6
