"""Process graphs: nodes and segments (paper §2, Figs. 1–2).

A process is represented by a graph whose nodes are its entry/exit
statements, channel accesses and timing waits, and whose arcs are the
*segments* — the closed pieces of code between two nodes.  Two segments
may share a start node or an end node, but a (start, end) pair names a
unique segment (paper: "Its initial and final statements identify each
segment").
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

try:  # networkx is a declared dependency, but keep the import soft so
    import networkx as _nx  # the graph core works even without it.
except ImportError:  # pragma: no cover
    _nx = None


@dataclasses.dataclass(frozen=True)
class NodeId:
    """Identity of a process-graph node.

    ``kind`` is one of ``entry``, ``exit``, ``channel`` or ``wait``;
    ``detail`` carries ``channel_name.operation`` for channel nodes;
    ``site`` is the source line of the access in the process body —
    the dynamic equivalent of the paper's parser-inserted marks.
    """

    kind: str
    detail: str = ""
    site: int = 0

    def describe(self) -> str:
        if self.kind == "channel":
            return f"{self.detail}@{self.site}"
        if self.kind == "wait":
            return f"wait@{self.site}"
        return self.kind


@dataclasses.dataclass
class NodeStats:
    """Aggregated observations for one node."""

    node: NodeId
    label: str            # N0, N1, ... in order of first appearance
    executions: int = 0


@dataclasses.dataclass
class SegmentStats:
    """Aggregated observations for one segment (arc)."""

    start: NodeId
    end: NodeId
    label: str            # Si-j using the node labels
    executions: int = 0
    total_cycles: float = 0.0
    total_cycles_sq: float = 0.0
    min_cycles: float = float("inf")
    max_cycles: float = 0.0
    #: critical-path cycles (HW-mode accumulation); equals total for SW
    total_critical_path: float = 0.0
    #: user marks observed inside this segment
    marks: List[str] = dataclasses.field(default_factory=list)

    def observe(self, cycles: float, critical_path: float) -> None:
        self.executions += 1
        self.total_cycles += cycles
        self.total_cycles_sq += cycles * cycles
        self.total_critical_path += critical_path
        if cycles < self.min_cycles:
            self.min_cycles = cycles
        if cycles > self.max_cycles:
            self.max_cycles = cycles

    @property
    def mean_cycles(self) -> float:
        if self.executions == 0:
            return 0.0
        return self.total_cycles / self.executions

    @property
    def variance_cycles(self) -> float:
        """Population variance of the observed segment costs."""
        if self.executions == 0:
            return 0.0
        mean = self.mean_cycles
        variance = self.total_cycles_sq / self.executions - mean * mean
        return max(0.0, variance)  # guard rounding

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Normal-approximation CI for the mean segment cost.

        Dynamic estimation over data-dependent paths leaves residual
        uncertainty; following the paper's pointer to confidence-
        interval reporting [17], this gives ``mean ± z * s/sqrt(n)``
        (default z: 95 %).  With one observation the interval collapses
        to the point.
        """
        if self.executions <= 1:
            return (self.mean_cycles, self.mean_cycles)
        half_width = z * (self.variance_cycles ** 0.5) / (self.executions ** 0.5)
        return (self.mean_cycles - half_width, self.mean_cycles + half_width)


class ProcessGraph:
    """The dynamic graph of one process: nodes, segments and statistics."""

    def __init__(self, process_name: str):
        self.process_name = process_name
        self.nodes: Dict[NodeId, NodeStats] = {}
        self.segments: Dict[Tuple[NodeId, NodeId], SegmentStats] = {}
        self._entry = NodeId("entry")
        self.touch_node(self._entry)

    @property
    def entry(self) -> NodeId:
        return self._entry

    def touch_node(self, node: NodeId) -> NodeStats:
        """Record one execution of ``node``, creating it on first sight."""
        stats = self.nodes.get(node)
        if stats is None:
            stats = NodeStats(node, f"N{len(self.nodes)}")
            self.nodes[node] = stats
        stats.executions += 1
        return stats

    def touch_segment(self, start: NodeId, end: NodeId,
                      cycles: float = 0.0,
                      critical_path: float = 0.0) -> SegmentStats:
        """Record one execution of the segment ``start → end``."""
        key = (start, end)
        stats = self.segments.get(key)
        if stats is None:
            label = f"S{self.nodes[start].label[1:]}-{self.nodes[end].label[1:]}"
            stats = SegmentStats(start, end, label)
            self.segments[key] = stats
        stats.observe(cycles, critical_path)
        return stats

    # -- queries ---------------------------------------------------------

    def segment(self, start_label: str, end_label: str) -> Optional[SegmentStats]:
        """Look up a segment by its node labels, e.g. ``("N0", "N1")``."""
        for stats in self.segments.values():
            if stats.label == f"S{start_label[1:]}-{end_label[1:]}":
                return stats
        return None

    def total_cycles(self) -> float:
        return sum(s.total_cycles for s in self.segments.values())

    def successors(self, node: NodeId) -> List[NodeId]:
        return [end for (start, end) in self.segments if start == node]

    def to_networkx(self):
        """Export as a ``networkx.DiGraph`` (node labels + segment stats)."""
        if _nx is None:  # pragma: no cover
            raise ImportError("networkx is not installed")
        graph = _nx.DiGraph(process=self.process_name)
        for node, stats in self.nodes.items():
            graph.add_node(stats.label, kind=node.kind,
                           detail=node.describe(), executions=stats.executions)
        for (start, end), stats in self.segments.items():
            graph.add_edge(self.nodes[start].label, self.nodes[end].label,
                           label=stats.label, executions=stats.executions,
                           mean_cycles=stats.mean_cycles)
        return graph

    def to_dot(self) -> str:
        """GraphViz rendering of the process graph (Fig. 2 style)."""
        lines = [f'digraph "{self.process_name}" {{']
        for node, stats in self.nodes.items():
            shape = {"entry": "circle", "exit": "doublecircle"}.get(node.kind, "box")
            lines.append(
                f'  {stats.label} [shape={shape}, '
                f'label="{stats.label}\\n{node.describe()}"];'
            )
        for (start, end), stats in self.segments.items():
            lines.append(
                f"  {self.nodes[start].label} -> {self.nodes[end].label} "
                f'[label="{stats.label} (x{stats.executions})"];'
            )
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"ProcessGraph({self.process_name!r}, nodes={len(self.nodes)}, "
                f"segments={len(self.segments)})")
