"""Static source scanning — the paper's "simple parser program".

The C++ flow needs a parser to insert segment marks into the source.
Our dynamic tracker makes that unnecessary at runtime, but the static
scan is still useful: it lists the node sites of a process *before*
simulation (documentation, coverage checks: did the simulation visit
every static node?) and reproduces Fig. 1's annotated listing.  The
scanner also feeds :mod:`repro.analysis`, which grows it into a full
model linter and a static segment-graph builder.
"""

from __future__ import annotations

import ast
import dataclasses
import inspect
import textwrap
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ReproError

#: Channel method names treated as access sites.
CHANNEL_OPERATIONS = frozenset({
    "read", "write", "try_read", "await_change",
})

#: Backwards-compatible private alias (pre-analysis-subsystem name).
_CHANNEL_OPERATIONS = CHANNEL_OPERATIONS


@dataclasses.dataclass(frozen=True)
class StaticNode:
    """One potential node site found in a process body."""

    kind: str         # channel | wait
    detail: str       # "target.operation" or "wait"
    lineno: int       # line within the function source (1-based, absolute)

    def describe(self) -> str:
        return f"{self.kind}:{self.detail}@{self.lineno}"


def _collect_aliases(tree: ast.AST) -> Dict[str, str]:
    """Simple local aliases: ``ch = self.out`` -> {"ch": "self.out"}.

    Only single-target assignments of bare names/attribute chains are
    tracked (the idiom the paper's listing style produces); anything
    fancier invalidates the alias.  Last assignment wins, which is the
    common straight-line case — the scanner is documentation tooling,
    not a dataflow engine.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)):
            continue
        name = node.targets[0].id
        value = node.value
        if isinstance(value, (ast.Name, ast.Attribute)):
            aliases[name] = ast.unparse(value)
        else:
            aliases.pop(name, None)
    return aliases


def _resolve_target(target: str, aliases: Dict[str, str]) -> str:
    """Follow alias chains (``ch`` -> ``self.out``), bounded."""
    seen = set()
    while target in aliases and target not in seen:
        seen.add(target)
        target = aliases[target]
    return target


class _NodeScanner(ast.NodeVisitor):
    """Collects channel/wait node sites in any AST subtree.

    Understands accesses spelled through local aliases and does not care
    about the enclosing statement shape, so sites inside ``try``/
    ``finally`` and ``with`` blocks (and assignments, conditions, nested
    calls) are all found.
    """

    def __init__(self, first_line: int, aliases: Optional[Dict[str, str]] = None):
        self.first_line = first_line
        self.aliases = aliases or {}
        self.nodes: List[StaticNode] = []

    def _abs_line(self, node: ast.AST) -> int:
        return self.first_line + node.lineno - 1

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        call = node.value
        if isinstance(call, ast.Call) and isinstance(call.func, ast.Attribute):
            if call.func.attr in CHANNEL_OPERATIONS:
                target = ast.unparse(call.func.value)
                target = _resolve_target(target, self.aliases)
                self.nodes.append(StaticNode(
                    "channel", f"{target}.{call.func.attr}", self._abs_line(node)
                ))
        self.generic_visit(node)

    def visit_Yield(self, node: ast.Yield) -> None:
        value = node.value
        if isinstance(value, ast.Call):
            func = value.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else ""
            )
            if name in ("wait", "WaitFor"):
                self.nodes.append(StaticNode("wait", "wait", self._abs_line(node)))
        self.generic_visit(node)


def parse_body(body: Callable) -> Tuple[ast.AST, int, str]:
    """(tree, first_line, dedented_source) of a process body function.

    Unwraps decorated bodies (``functools.wraps`` chains) so the scan
    sees the user's code, not the decorator's wrapper.  Raises
    :class:`~repro.errors.ReproError` for lambdas and for functions
    whose source is unavailable (e.g. defined interactively).
    """
    body = inspect.unwrap(body)
    if getattr(body, "__name__", "") == "<lambda>":
        raise ReproError(
            "cannot scan a lambda process body; use a def so the source "
            "is a standalone statement"
        )
    try:
        source = inspect.getsource(body)
        first_line = inspect.getsourcelines(body)[1]
    except (OSError, TypeError) as exc:
        raise ReproError(f"cannot obtain source of {body!r}: {exc}") from exc
    dedented = textwrap.dedent(source)
    try:
        tree = ast.parse(dedented)
    except SyntaxError as exc:  # dedent could not normalize the extract
        raise ReproError(
            f"cannot parse source of {body!r}: {exc}") from exc
    return tree, first_line, dedented


def scan_process(body: Callable) -> List[StaticNode]:
    """Statically list the node sites of a process body function.

    Channel accesses are found whether written directly
    (``yield from self.out.write(x)``), through a local alias
    (``ch = self.out; yield from ch.write(x)`` — reported against the
    resolved target), or nested inside ``try``/``finally``/``with``
    blocks.  Raises :class:`~repro.errors.ReproError` when the source is
    not available (e.g. functions defined interactively) or the body is
    a lambda.
    """
    tree, first_line, _source = parse_body(body)
    scanner = _NodeScanner(first_line, _collect_aliases(tree))
    scanner.visit(tree)
    return sorted(scanner.nodes, key=lambda n: n.lineno)


def sites_in(node: ast.AST, first_line: int,
             aliases: Optional[Dict[str, str]] = None) -> List[StaticNode]:
    """Node sites inside one AST subtree (used by the graph builder)."""
    scanner = _NodeScanner(first_line, aliases)
    scanner.visit(node)
    return sorted(scanner.nodes, key=lambda n: n.lineno)


def exception_site_lines(stmts, first_line: int,
                         aliases: Optional[Dict[str, str]] = None) -> set:
    """Absolute lines of every node site in a ``try`` body.

    An exception can surface *after any site* inside the protected
    block, so each site line — not just the block's normal exits — is a
    possible predecessor of the handler's first site.  The graph
    builders use this as the handler entry frontier instead of
    collapsing the whole statement to opaque.
    """
    lines = set()
    for stmt in stmts:
        for site in sites_in(stmt, first_line, aliases):
            lines.add(site.lineno)
    return lines


def coverage_report(body: Callable, graph) -> "CoverageReport":
    """Compare the static node sites of ``body`` with a dynamic graph.

    A static site the simulation never visited usually means the
    stimulus did not reach that code path — estimation figures for the
    process are then incomplete.  ``graph`` is the
    :class:`~repro.segments.graph.ProcessGraph` the tracker built for
    the process.
    """
    static_sites = scan_process(body)
    visited_lines = {node.site for node in graph.nodes
                     if node.kind in ("channel", "wait")}
    covered = [site for site in static_sites if site.lineno in visited_lines]
    missed = [site for site in static_sites if site.lineno not in visited_lines]
    return CoverageReport(tuple(static_sites), tuple(covered), tuple(missed))


@dataclasses.dataclass(frozen=True)
class CoverageReport:
    """Outcome of :func:`coverage_report`."""

    static_sites: tuple
    covered: tuple
    missed: tuple

    @property
    def complete(self) -> bool:
        return not self.missed

    @property
    def ratio(self) -> float:
        if not self.static_sites:
            return 1.0
        return len(self.covered) / len(self.static_sites)

    def describe(self) -> str:
        lines = [f"node coverage: {len(self.covered)}/{len(self.static_sites)}"]
        for site in self.missed:
            lines.append(f"  MISSED {site.describe()}")
        return "\n".join(lines)


def annotate_listing(body: Callable) -> str:
    """Render the function source with node sites marked (Fig. 1 style).

    Each node line gets a ``# <- Nk`` comment appended, numbering node
    sites in textual order (entry/exit implicit).  Works on decorated
    bodies (the original source is listed) and keeps the numbering
    aligned for nested, indented definitions.
    """
    body = inspect.unwrap(body)
    _tree, first_line, source = parse_body(body)
    nodes = scan_process(body)
    by_line = {n.lineno: i for i, n in enumerate(nodes, start=1)}
    out = []
    for offset, line in enumerate(source.splitlines()):
        lineno = first_line + offset
        if lineno in by_line:
            out.append(f"{line}  # <- N{by_line[lineno]}")
        else:
            out.append(line)
    return "\n".join(out)
