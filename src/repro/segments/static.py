"""Static source scanning — the paper's "simple parser program".

The C++ flow needs a parser to insert segment marks into the source.
Our dynamic tracker makes that unnecessary at runtime, but the static
scan is still useful: it lists the node sites of a process *before*
simulation (documentation, coverage checks: did the simulation visit
every static node?) and reproduces Fig. 1's annotated listing.
"""

from __future__ import annotations

import ast
import dataclasses
import inspect
import textwrap
from typing import Callable, List

from ..errors import ReproError

#: Channel method names treated as access sites.
_CHANNEL_OPERATIONS = frozenset({
    "read", "write", "try_read", "await_change",
})


@dataclasses.dataclass(frozen=True)
class StaticNode:
    """One potential node site found in a process body."""

    kind: str         # channel | wait
    detail: str       # "target.operation" or "wait"
    lineno: int       # line within the function source (1-based, absolute)

    def describe(self) -> str:
        return f"{self.kind}:{self.detail}@{self.lineno}"


class _NodeScanner(ast.NodeVisitor):
    def __init__(self, first_line: int):
        self.first_line = first_line
        self.nodes: List[StaticNode] = []

    def _abs_line(self, node: ast.AST) -> int:
        return self.first_line + node.lineno - 1

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        call = node.value
        if isinstance(call, ast.Call) and isinstance(call.func, ast.Attribute):
            if call.func.attr in _CHANNEL_OPERATIONS:
                target = ast.unparse(call.func.value)
                self.nodes.append(StaticNode(
                    "channel", f"{target}.{call.func.attr}", self._abs_line(node)
                ))
        self.generic_visit(node)

    def visit_Yield(self, node: ast.Yield) -> None:
        value = node.value
        if isinstance(value, ast.Call):
            func = value.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else ""
            )
            if name in ("wait", "WaitFor"):
                self.nodes.append(StaticNode("wait", "wait", self._abs_line(node)))
        self.generic_visit(node)


def scan_process(body: Callable) -> List[StaticNode]:
    """Statically list the node sites of a process body function.

    Raises :class:`~repro.errors.ReproError` when the source is not
    available (e.g. functions defined interactively).
    """
    try:
        source = inspect.getsource(body)
        first_line = inspect.getsourcelines(body)[1]
    except (OSError, TypeError) as exc:
        raise ReproError(f"cannot obtain source of {body!r}: {exc}") from exc
    tree = ast.parse(textwrap.dedent(source))
    scanner = _NodeScanner(first_line)
    scanner.visit(tree)
    return sorted(scanner.nodes, key=lambda n: n.lineno)


def coverage_report(body: Callable, graph) -> "CoverageReport":
    """Compare the static node sites of ``body`` with a dynamic graph.

    A static site the simulation never visited usually means the
    stimulus did not reach that code path — estimation figures for the
    process are then incomplete.  ``graph`` is the
    :class:`~repro.segments.graph.ProcessGraph` the tracker built for
    the process.
    """
    static_sites = scan_process(body)
    visited_lines = {node.site for node in graph.nodes
                     if node.kind in ("channel", "wait")}
    covered = [site for site in static_sites if site.lineno in visited_lines]
    missed = [site for site in static_sites if site.lineno not in visited_lines]
    return CoverageReport(tuple(static_sites), tuple(covered), tuple(missed))


@dataclasses.dataclass(frozen=True)
class CoverageReport:
    """Outcome of :func:`coverage_report`."""

    static_sites: tuple
    covered: tuple
    missed: tuple

    @property
    def complete(self) -> bool:
        return not self.missed

    @property
    def ratio(self) -> float:
        if not self.static_sites:
            return 1.0
        return len(self.covered) / len(self.static_sites)

    def describe(self) -> str:
        lines = [f"node coverage: {len(self.covered)}/{len(self.static_sites)}"]
        for site in self.missed:
            lines.append(f"  MISSED {site.describe()}")
        return "\n".join(lines)


def annotate_listing(body: Callable) -> str:
    """Render the function source with node sites marked (Fig. 1 style).

    Each node line gets a ``# <- Nk`` comment appended, numbering node
    sites in textual order (entry/exit implicit).
    """
    source = textwrap.dedent(inspect.getsource(body))
    first_line = inspect.getsourcelines(body)[1]
    nodes = scan_process(body)
    by_line = {n.lineno: i for i, n in enumerate(nodes, start=1)}
    out = []
    for offset, line in enumerate(source.splitlines()):
        lineno = first_line + offset
        if lineno in by_line:
            out.append(f"{line}  # <- N{by_line[lineno]}")
        else:
            out.append(line)
    return "\n".join(out)
