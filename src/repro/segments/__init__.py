"""Process segmentation: graphs, dynamic tracking, static scanning."""

from .graph import NodeId, NodeStats, ProcessGraph, SegmentStats
from .precharge import FastForwardEngine, SegmentPlan, build_plan, plan_for
from .static import (
    CoverageReport,
    StaticNode,
    annotate_listing,
    coverage_report,
    scan_process,
)
from .tracker import SegmentTracker, node_id_for

__all__ = [
    "NodeId", "NodeStats", "ProcessGraph", "SegmentStats",
    "CoverageReport", "StaticNode", "annotate_listing", "coverage_report",
    "scan_process",
    "SegmentTracker", "node_id_for",
    "FastForwardEngine", "SegmentPlan", "build_plan", "plan_for",
]
