"""Segment fast-forwarding: pre-characterized charging for fixed segments.

Native-simulation practice replaces per-instruction accounting with
pre-characterized *block* costs.  The same idea applies to the paper's
annotated simulation: a segment whose **operation multiset is provably
input-independent** charges exactly the same ``(Tmax, Tmin, op counts)``
bundle on every execution, so re-running its per-operation charging is
pure overhead.  This module

1. proves that property statically, per *arc* of the static segment
   graph (:class:`SegmentPlan`, built by a purity-tracking variant of
   the :mod:`repro.analysis` arc walker),
2. captures each eligible arc's bundle the first time the simulation
   executes it dynamically (arcs provably charging *nothing* — e.g.
   falling out of a ``range`` loop head — are pre-seeded with a zero
   bundle, so loop-exit arcs never gate the steady state), and
3. *fast-forwards* later executions: while the process runs a segment
   whose possible outcomes are all characterized, the cost context is
   detached (annotated operators take their no-context path — the code
   still executes functionally, values stay exact) and at the next node
   the engine re-attaches the context and installs the recorded bundle.

What "provably input-independent" means
---------------------------------------

Values may differ between executions — only the *multiset of operations
charged* must not.  That rules out exactly the constructs whose charge
stream depends on data:

* conditionals without a node site in every branch (the taken branch
  changes the ops between two sites),
* loops without node sites whose trip count is not a literal constant
  (unless the loop provably charges nothing at all),
* short-circuit ``and``/``or`` and conditional expressions,
* calls that cannot be classified: a small charge-free whitelist
  (``range``, ``len``, ``wait``, ``SimTime.*``) is approved outright,
  and everything else is handed to the interprocedural effect
  summaries (:mod:`repro.analysis.effects`), which resolve the callee
  through the body's closure/globals and approve it when it is
  *transparent* (returns and publishes only plain values — so running
  it with the context detached is functionally identical) and its
  charge multiset is classified ``zero``/``constant``/``uniform``
  (``uniform`` = a function of steady plain shapes/scalars only; that
  premise is validated, not assumed, by the differential check mode),
* annotation entry points (``aint``/``arange``/``make_array``) — their
  behaviour depends on whether a context is attached, so suppressing
  the context would change functional results (the effect analyzer
  rejects them by construction: their results are annotated).

Loops *with* node sites inside are eligible regardless of trip count:
the loop head charges a fixed amount per crossing, so every individual
arc (entry→body-site, body-site→body-site, body-site→exit) has a fixed
multiset — the trip count only decides how many times each arc runs,
which the dynamic tracker already accounts per execution.

The analysis walks a two-bit lattice per arc: bit 0 — the arc's charge
multiset is execution-independent ("eligible"); bit 1 — the arc
provably charges *zero* operations ("zero-charge": only plain-Python
statements, ``range`` loop heads, name/constant moves).  Zero-charge
arcs need no dynamic characterization at all; the engine seeds their
bundles statically, which matters because a loop's exit arc otherwise
executes only once — at the very end — and would keep the loop node
"open" (suppression requires every successor characterized) for the
whole simulation.  Boolean test positions are never zero-charge unless
the test is a literal: a bare name there may hold an ``ABool`` whose
implicit ``__bool__`` charges a branch.

Soundness guards: a process is excluded wholesale when its body cannot
be parsed, yields anything the static scanner does not recognize,
defines nested functions, or hosts two node sites on one source line
(line-keyed arcs would alias).  ``yield from helper()`` sub-generators
surface their node at the call line (the outer frame stays on that
line while the helper runs); a helper that is a zero-argument,
straight-line generator with **exactly one** recognized site is
modelled as a synthetic node at the call line, with the helper's own
combined purity flags applied to both the incoming and the outgoing
arc — any other helper shape still disqualifies the process.  The engine only
suppresses charging when *every* statically-possible successor arc of
the current node is both eligible and already characterized, so the
first execution of any non-trivial path is always charged dynamically;
a ``check=True`` engine never suppresses and instead asserts that every
re-execution of an eligible arc reproduces its recorded bundle
byte-for-byte (the ``--check-fastforward`` differential mode) — which
also validates the statically seeded zero bundles.

In HW (critical-path) mode the bundle replay advances the context's
ready clock by the recorded ``Tmin``; values produced inside a
suppressed segment carry ready time 0.0, which the context clamps to
the segment base exactly like any value inherited from an earlier
segment, so downstream critical paths are unchanged.
"""

from __future__ import annotations

import ast
import dataclasses
import inspect
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..annotate.context import CostContext, set_current
from ..annotate.costs import N_OPERATIONS
from ..errors import AnnotationError, ReproError
from ..kernel.commands import Command, ProcessExit
from ..kernel.process import Process
from ..kernel.scheduler import SchedulerObserver
from ..kernel.time import SimTime
from ..segments.static import (
    CHANNEL_OPERATIONS,
    StaticNode,
    _collect_aliases,
    exception_site_lines,
    parse_body,
    sites_in,
)

#: Pseudo-line identities of the implicit entry/exit nodes (same values
#: as :mod:`repro.analysis.graphdiff`, duplicated to keep ``segments``
#: free of an ``analysis`` import cycle).
ENTRY_LINE = 0
EXIT_LINE = -1

Arc = Tuple[int, int]

#: Lattice bits.  ``_PURE``: fixed charge multiset across executions.
#: ``_ZERO``: additionally charges nothing at all.  Only the values
#: 0, ``_PURE`` and ``_PURE | _ZERO`` occur (zero-charge implies pure);
#: combination along paths and across merges is bitwise AND.
_PURE = 1
_ZERO = 2
_BOTH = _PURE | _ZERO

#: Charge-free callables allowed inside eligible segments.  ``range``
#: and ``len`` never charge (``AInt.__index__`` and ``AArray.__len__``
#: are plain accessors); ``wait`` only builds a kernel command;
#: ``SimTime.*`` constructors are plain arithmetic on plain ints.
_FREE_CALLS = frozenset({"range", "len", "wait"})
_FREE_CALL_BASES = frozenset({"SimTime"})

#: A captured segment accumulation: (t_max, t_min, interned counts).
Bundle = Tuple[float, float, tuple]

_ZERO_BUNDLE: Bundle = (0.0, 0.0, (0,) * N_OPERATIONS)


# ---------------------------------------------------------------------------
# Static eligibility analysis
# ---------------------------------------------------------------------------

def _is_channel_site(node: ast.AST) -> bool:
    return (isinstance(node, ast.YieldFrom)
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Attribute)
            and node.value.func.attr in CHANNEL_OPERATIONS)


def _is_wait_site(node: ast.AST) -> bool:
    if not (isinstance(node, ast.Yield) and isinstance(node.value, ast.Call)):
        return False
    func = node.value.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else "")
    return name in ("wait", "WaitFor")


class _PurityWalker:
    """Arc walker tracking, per arc, the charge-independence lattice.

    Mirrors the abstract control-flow walk of
    :class:`repro.analysis.graphdiff._ArcWalker` (same frontier/fixpoint
    structure, so the arc set is complete), with the frontier holding a
    flags value per member: "the path from that site to here charges a
    fixed multiset (bit 0) / nothing at all (bit 1)".  Arc flags only
    ever decrease (bitwise AND along paths and merges).
    """

    _MAX_LOOP_PASSES = 8

    def __init__(self, first_line: int, aliases: Dict[str, str],
                 classify=None, helper_lines: Optional[Dict[int, int]] = None):
        self.first_line = first_line
        self.aliases = aliases
        self.arcs: Dict[Arc, int] = {}
        #: optional call classifier: (ast.Call) -> Optional[int flags],
        #: backed by the interprocedural effect summaries.
        self._classify = classify
        #: absolute line -> combined flags of an approved helper
        #: sub-generator yielded from that line.
        self._helper_lines = helper_lines or {}

    # -- helpers ---------------------------------------------------------

    def _sites(self, node: ast.AST):
        sites = sites_in(node, self.first_line, self.aliases)
        if self._helper_lines:
            for sub in ast.walk(node):
                if (isinstance(sub, ast.YieldFrom)
                        and not _is_channel_site(sub)):
                    abs_line = self.first_line + sub.lineno - 1
                    if abs_line in self._helper_lines:
                        sites.append(StaticNode(
                            "helper", "sub-generator", abs_line))
            sites.sort(key=lambda n: n.lineno)
        return sites

    def _add_arc(self, start: int, end: int, flags: int) -> None:
        self.arcs[(start, end)] = self.arcs.get((start, end), _BOTH) & flags

    @staticmethod
    def _merge(*frontiers: Dict[int, int]) -> Dict[int, int]:
        merged: Dict[int, int] = {}
        for frontier in frontiers:
            for line, flags in frontier.items():
                merged[line] = merged.get(line, _BOTH) & flags
        return merged

    @staticmethod
    def _mask(frontier: Dict[int, int], flags: int) -> Dict[int, int]:
        return {line: v & flags for line, v in frontier.items()}

    # -- expression flags ------------------------------------------------

    def _call_flags(self, node: ast.Call) -> int:
        if node.keywords:
            return 0
        func = node.func
        if isinstance(func, ast.Name):
            ok = func.id in _FREE_CALLS
        elif isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            ok = func.value.id in _FREE_CALL_BASES
        else:
            ok = False
        if ok:
            flags = _BOTH
        elif self._classify is not None:
            classified = self._classify(node)
            if classified is None:
                return 0
            flags = classified
        else:
            return 0
        # The call's own charges are classified; argument expressions
        # still evaluate (and may charge) in the caller's arc.
        for arg in node.args:
            flags &= self._expr_flags(arg)
        return flags

    def _expr_flags(self, node, allow_sites: bool = False) -> int:
        """Charge lattice of evaluating ``node``.

        Values may vary between executions; only charge-relevant
        *structure* matters.  With ``allow_sites`` the recognized
        node-site yields count as charge-free leaves (their arguments
        still checked) — used for statements that contain sites.
        """
        if node is None:
            return _BOTH
        if isinstance(node, (ast.Constant, ast.Name)):
            return _BOTH
        if isinstance(node, ast.Attribute):
            # Attribute access never charges.
            return self._expr_flags(node.value)
        if isinstance(node, ast.Subscript):
            # One load per evaluation regardless of index value — but an
            # AArray subscript does charge that load.
            return (self._expr_flags(node.value)
                    & self._expr_flags(node.slice) & _PURE)
        if isinstance(node, ast.BinOp):
            return (self._expr_flags(node.left)
                    & self._expr_flags(node.right) & _PURE)
        if isinstance(node, ast.UnaryOp):
            return self._expr_flags(node.operand) & _PURE
        if isinstance(node, ast.Compare):
            flags = self._expr_flags(node.left)
            for comparator in node.comparators:
                flags &= self._expr_flags(comparator)
            return flags & _PURE
        if isinstance(node, (ast.Tuple, ast.List)):
            flags = _BOTH
            for elt in node.elts:
                flags &= self._expr_flags(elt)
            return flags
        if isinstance(node, ast.Call):
            return self._call_flags(node)
        if allow_sites and _is_channel_site(node):
            flags = _BOTH
            for arg in node.value.args:
                flags &= self._expr_flags(arg)
            return flags
        if allow_sites and _is_wait_site(node):
            flags = _BOTH
            for arg in node.value.args:
                flags &= self._expr_flags(arg)
            return flags
        if (allow_sites and isinstance(node, ast.YieldFrom)
                and self._helper_lines):
            helper_flags = self._helper_lines.get(
                self.first_line + node.lineno - 1)
            if helper_flags is not None:
                return helper_flags
        # BoolOp/IfExp (short-circuit), comprehensions, lambdas, yields
        # outside sites, f-strings, dict/set literals, starred, ...
        return 0

    def _test_flags(self, node) -> int:
        """Flags of a boolean-context expression (if/while/assert test).

        Never zero-charge unless a literal: a bare name here may hold an
        ``ABool`` whose implicit ``__bool__`` charges a branch.
        """
        if isinstance(node, ast.Constant):
            return _BOTH
        return self._expr_flags(node) & _PURE

    def _target_flags(self, node) -> int:
        if isinstance(node, ast.Name):
            return _BOTH
        if isinstance(node, ast.Subscript):  # one store, fixed — charges
            return (self._expr_flags(node.value)
                    & self._expr_flags(node.slice) & _PURE)
        if isinstance(node, ast.Attribute):
            return self._expr_flags(node.value)
        if isinstance(node, (ast.Tuple, ast.List)):
            flags = _BOTH
            for elt in node.elts:
                flags &= self._target_flags(elt)
            return flags
        return 0

    def _stmt_flags(self, stmt: ast.stmt, allow_sites: bool = False) -> int:
        """Charge lattice of one non-structural statement."""
        if isinstance(stmt, ast.Assign):
            flags = self._expr_flags(stmt.value, allow_sites)
            for target in stmt.targets:
                flags &= self._target_flags(target)
            return flags
        if isinstance(stmt, ast.AugAssign):  # in-place op charges
            return (self._target_flags(stmt.target)
                    & self._expr_flags(stmt.value, allow_sites) & _PURE)
        if isinstance(stmt, ast.AnnAssign):
            return (self._target_flags(stmt.target)
                    & self._expr_flags(stmt.value, allow_sites))
        if isinstance(stmt, ast.Expr):
            return self._expr_flags(stmt.value, allow_sites)
        if isinstance(stmt, (ast.Pass, ast.Global, ast.Nonlocal)):
            return _BOTH
        if isinstance(stmt, ast.Assert):
            return (self._test_flags(stmt.test)
                    & self._expr_flags(stmt.msg) & _PURE)
        if isinstance(stmt, ast.Return):
            return self._expr_flags(stmt.value, allow_sites)
        return 0

    # -- statement walk --------------------------------------------------

    def _chain(self, stmt: ast.stmt, frontier: Dict[int, int],
               extra: int = _BOTH) -> Dict[int, int]:
        """Process one statement that contains node sites."""
        stmt_flags = extra & self._stmt_flags(stmt, allow_sites=True)
        for site in self._sites(stmt):
            for start, flags in frontier.items():
                self._add_arc(start, site.lineno, flags & stmt_flags)
            frontier = {site.lineno: stmt_flags}
        return frontier

    def _chain_sites(self, sites, frontier: Dict[int, int],
                     flags: int) -> Dict[int, int]:
        """Chain pre-extracted sites (loop heads, if tests)."""
        for site in sites:
            for start, start_flags in frontier.items():
                self._add_arc(start, site.lineno, start_flags & flags)
            frontier = {site.lineno: flags}
        return frontier

    def walk(self, stmts: Sequence[ast.stmt], frontier: Dict[int, int],
             loop) -> Dict[int, int]:
        for stmt in stmts:
            if not frontier:
                break  # unreachable code draws no arcs
            frontier = self._walk_stmt(stmt, frontier, loop)
        return frontier

    def _walk_stmt(self, stmt: ast.stmt, frontier: Dict[int, int],
                   loop) -> Dict[int, int]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            # Definition executes charge-free; the plan builder rejects
            # bodies with nested defs anyway (see build_plan).
            return frontier
        if isinstance(stmt, ast.Return):
            frontier = self._chain(stmt, frontier)
            for start, flags in frontier.items():
                self._add_arc(start, EXIT_LINE, flags)
            return {}
        if isinstance(stmt, ast.Raise):
            self._chain(stmt, frontier, 0)
            return {}
        if isinstance(stmt, ast.Break):
            if loop is not None:
                loop.breaks = self._merge(loop.breaks, frontier)
            return {}
        if isinstance(stmt, ast.Continue):
            if loop is not None:
                loop.continues = self._merge(loop.continues, frontier)
            return {}
        if isinstance(stmt, ast.If):
            test_flags = self._test_flags(stmt.test)
            test_sites = self._sites(stmt.test)
            if test_sites:
                frontier = self._chain_sites(test_sites, frontier, test_flags)
            else:
                frontier = self._mask(frontier, test_flags)
            taken = self.walk(stmt.body, dict(frontier), loop)
            other = (self.walk(stmt.orelse, dict(frontier), loop)
                     if stmt.orelse else dict(frontier))
            merged = self._merge(taken, other)
            # A frontier member that survives the conditional reaches the
            # next site through a data-dependent branch choice: impure.
            for line in merged:
                if line in frontier:
                    merged[line] = 0
            return merged
        if isinstance(stmt, (ast.While, ast.For)):
            return self._walk_loop(stmt, frontier, loop)
        if isinstance(stmt, ast.With):
            # Context managers run arbitrary enter/exit code: arcs stay
            # complete but nothing through here is eligible.
            frontier = self._mask(frontier, 0)
            for item in stmt.items:
                frontier = self._chain_sites(self._sites(item), frontier, 0)
            return self.walk(stmt.body, frontier, loop)
        if isinstance(stmt, ast.Try):
            # The exception-free path charges deterministically, so it is
            # walked naturally.  An exception may surface after *any*
            # site inside the protected block (not just its normal
            # exits), or before the first one — handlers start from the
            # incoming frontier plus every site line in the body, all
            # impure: whether the raise happens at all is data-dependent,
            # and arcs into a handler carry a truncated charge stream.
            # Nodes inside the body therefore keep an impure successor
            # and are never suppressed.
            body_out = self.walk(stmt.body, dict(frontier), loop)
            raise_points = {line: 0 for line in exception_site_lines(
                stmt.body, self.first_line, self.aliases)}
            for line in frontier:
                raise_points[line] = 0
            handler_outs: Dict[int, int] = {}
            for handler in stmt.handlers:
                out = self.walk(handler.body, dict(raise_points), loop)
                handler_outs = self._merge(handler_outs, self._mask(out, 0))
            else_out = (self.walk(stmt.orelse, dict(body_out), loop)
                        if stmt.orelse else body_out)
            merged = self._merge(else_out, handler_outs)
            if stmt.finalbody:
                return self.walk(stmt.finalbody,
                                 merged or dict(raise_points), loop)
            return merged
        # simple statement
        sites = self._sites(stmt)
        if sites:
            return self._chain(stmt, frontier)
        return self._mask(frontier, self._stmt_flags(stmt))

    # -- loops ------------------------------------------------------------

    @staticmethod
    def _const_trip(stmt) -> bool:
        """``for ... in range(<literal constants>)`` — fixed trip count."""
        return (isinstance(stmt, ast.For)
                and isinstance(stmt.iter, ast.Call)
                and isinstance(stmt.iter.func, ast.Name)
                and stmt.iter.func.id == "range"
                and not stmt.iter.keywords
                and all(isinstance(a, ast.Constant) for a in stmt.iter.args))

    def _loop_head_flags(self, stmt) -> int:
        if isinstance(stmt, ast.While):
            # The test charges a fixed multiset per crossing (boolean
            # context: zero-charge only when literal).
            return self._test_flags(stmt.test)
        # Only range() iteration is charge-free per crossing; iterating
        # an AArray charges a load per element, and an arbitrary Name
        # could hide a charging generator.
        if not (isinstance(stmt.iter, ast.Call)
                and isinstance(stmt.iter.func, ast.Name)
                and stmt.iter.func.id == "range"
                and not stmt.iter.keywords):
            return 0
        flags = self._target_flags(stmt.target)
        for arg in stmt.iter.args:
            flags &= self._expr_flags(arg)
        return flags

    def _walk_loop(self, stmt, frontier: Dict[int, int],
                   outer) -> Dict[int, int]:
        head_sites = (self._sites(stmt.test) if isinstance(stmt, ast.While)
                      else self._sites(stmt.iter))
        head_flags = 0 if head_sites else self._loop_head_flags(stmt)
        const_true = (isinstance(stmt, ast.While)
                      and isinstance(stmt.test, ast.Constant)
                      and bool(stmt.test.value))
        body_has_sites = any(self._sites(s) for s in stmt.body)

        frame = _LoopFrame()
        entry = dict(frontier)
        for _ in range(self._MAX_LOOP_PASSES):
            signature = (len(self.arcs), sum(self.arcs.values()),
                         tuple(sorted(entry.items())))
            head = self._mask(entry, head_flags)
            head = self._chain_sites(head_sites, head, head_flags)
            body_out = self.walk(stmt.body, dict(head), frame)
            entry = self._merge(entry, body_out, frame.continues)
            if (len(self.arcs), sum(self.arcs.values()),
                    tuple(sorted(entry.items()))) == signature:
                break
        if const_true:
            exit_frontier = dict(frame.breaks)
        else:
            tail = self._mask(entry, head_flags)
            tail = self._chain_sites(head_sites, tail, head_flags)
            exit_frontier = self._merge(tail, frame.breaks)
        if not body_has_sites:
            # The whole loop sits inside one segment.  A loop that
            # provably charges nothing contributes nothing for any trip
            # count; a merely fixed-multiset loop needs a literal trip
            # count for its total to be fixed.
            trip_ok = self._const_trip(stmt)
            exit_frontier = {
                line: (flags if flags & _ZERO
                       else (_PURE if (flags & _PURE and trip_ok) else 0))
                for line, flags in exit_frontier.items()
            }
        if getattr(stmt, "orelse", None):
            exit_frontier = self.walk(stmt.orelse, exit_frontier, outer)
        return exit_frontier


class _LoopFrame:
    __slots__ = ("breaks", "continues")

    def __init__(self):
        self.breaks: Dict[int, int] = {}
        self.continues: Dict[int, int] = {}


# ---------------------------------------------------------------------------
# Per-process plan
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class SegmentPlan:
    """Static fast-forward eligibility of one process body."""

    name: str
    ok: bool                                  # body analyzable at all
    reason: str                               # why not, when ok is False
    eligible: FrozenSet[Arc]                  # provably fixed-multiset arcs
    zero_charge: FrozenSet[Arc]               # eligible and charge nothing
    successors: Dict[int, Tuple[int, ...]]    # line -> possible next lines
    closed: Dict[int, bool]                   # line -> all outgoing eligible

    def describe(self) -> str:
        if not self.ok:
            return f"plan for {self.name}: ineligible ({self.reason})"
        total = sum(len(s) for s in self.successors.values())
        return (f"plan for {self.name}: {len(self.eligible)}/{total} "
                f"arc(s) eligible ({len(self.zero_charge)} zero-charge), "
                f"{sum(self.closed.values())} closed node(s)")


_INELIGIBLE = SegmentPlan("", False, "", frozenset(), frozenset(), {}, {})


def _ineligible(name: str, reason: str) -> SegmentPlan:
    return dataclasses.replace(_INELIGIBLE, name=name, reason=reason)


#: Statement shapes allowed in an approved helper sub-generator: strictly
#: straight-line code, so the helper's charge structure is one combined
#: flags value (no internal control flow to model).
_SIMPLE_STMTS = (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Expr,
                 ast.Return, ast.Pass, ast.Global, ast.Nonlocal, ast.Assert)


def _effects_env(body, fn: ast.FunctionDef):
    """``(env, classify)`` bridging to the interprocedural summaries.

    ``classify`` maps an ``ast.Call`` to lattice flags, or ``None`` when
    the effect analyzer cannot approve it: the callee must be
    *transparent* with a plain result (suppressed execution stays
    functionally identical) and its charge verdict decides the flags —
    ``zero`` is zero-charge, ``constant``/``uniform`` are eligible but
    charging.  Returns ``(None, None)`` when the analysis subsystem is
    unavailable or the body's environment cannot be captured.
    """
    try:
        from ..analysis import effects as fx
    except Exception:  # pragma: no cover - analysis always ships
        return None, None
    try:
        env = fx.EffectEnv.for_callable(body)
    except Exception:
        return None, None
    try:
        plains = fx.plain_locals(fn, env)
    except Exception:
        plains = set()

    def classify(call: ast.Call) -> Optional[int]:
        effect = env.call_effect(call, plains)
        if effect is None or not effect.approved or effect.result != fx.PLAIN:
            return None
        if effect.verdict == fx.ZERO:
            return _BOTH
        if effect.verdict in (fx.CONSTANT, fx.UNIFORM):
            return _PURE
        return None

    return env, classify


def _helper_subgenerator_flags(helper) -> Optional[int]:
    """Combined purity flags of an approvable helper sub-generator.

    ``None`` disqualifies.  To qualify, the helper must be a
    zero-argument generator function of straight-line simple statements
    containing **exactly one** recognized node site and no other yields:
    delegation then surfaces exactly one dynamic node at the outer call
    line, which the plan models as a synthetic site.  A second yield
    anywhere would surface a second node at the same call line — an
    unmodeled self-arc — so it must disqualify.
    """
    if not inspect.isgeneratorfunction(helper):
        return None
    code = getattr(inspect.unwrap(helper), "__code__", None)
    if (code is None or code.co_argcount or code.co_kwonlyargcount
            or code.co_flags & (inspect.CO_VARARGS | inspect.CO_VARKEYWORDS)):
        return None
    try:
        tree, first_line, _source = parse_body(helper)
    except ReproError:
        return None
    fn = next((node for node in ast.walk(tree)
               if isinstance(node, ast.FunctionDef)), None)
    if fn is None:
        return None
    if not all(isinstance(stmt, _SIMPLE_STMTS) for stmt in fn.body):
        return None
    for node in ast.walk(fn):
        if isinstance(node, ast.YieldFrom) and not _is_channel_site(node):
            return None
        if isinstance(node, ast.Yield) and not _is_wait_site(node):
            return None
    aliases = _collect_aliases(tree)
    if len(sites_in(fn, first_line, aliases)) != 1:
        return None
    walker = _PurityWalker(first_line, aliases)
    flags = _BOTH
    for stmt in fn.body:
        flags &= walker._stmt_flags(stmt, allow_sites=True)
    return flags


def _collect_helper_sites(fn: ast.FunctionDef, first_line: int,
                          env) -> List[Tuple[int, int]]:
    """``(absolute line, flags)`` for each approved ``yield from name()``.

    A list, not a dict, so two helper calls sharing a source line still
    trip the duplicate-site check in :func:`build_plan`.
    """
    if env is None:
        return []
    found_sites: List[Tuple[int, int]] = []
    for node in ast.walk(fn):
        if not (isinstance(node, ast.YieldFrom)
                and not _is_channel_site(node)
                and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Name)
                and not node.value.args and not node.value.keywords):
            continue
        known, target = env.resolve_name(node.value.func.id)
        if not known or not callable(target):
            continue
        flags = _helper_subgenerator_flags(target)
        if flags is None:
            continue
        found_sites.append((first_line + node.lineno - 1, flags))
    return found_sites


def _unrecognized_yields(fn: ast.FunctionDef, first_line: int = 1,
                         approved: FrozenSet[int] = frozenset()) -> List[int]:
    """Absolute lines of yields the plan has no node model for.

    Approved helper sub-generator calls (``approved`` lines, from
    :func:`_collect_helper_sites`) are modelled as synthetic sites; any
    other unrecognized yield disqualifies the whole process.
    """
    lines = []
    for node in ast.walk(fn):
        if isinstance(node, ast.YieldFrom) and not _is_channel_site(node):
            abs_line = first_line + node.lineno - 1
            if abs_line not in approved:
                lines.append(abs_line)
        elif isinstance(node, ast.Yield) and not _is_wait_site(node):
            lines.append(first_line + node.lineno - 1)
    return lines


def build_plan(body) -> SegmentPlan:
    """Statically analyze ``body`` for fast-forward eligibility."""
    name = getattr(body, "__qualname__", getattr(body, "__name__", "process"))
    if body is None:
        return _ineligible(name, "no body reference")
    try:
        tree, first_line, _source = parse_body(body)
    except ReproError as exc:
        return _ineligible(name, f"source unavailable: {exc}")
    fn = next((node for node in ast.walk(tree)
               if isinstance(node, ast.FunctionDef)), None)
    if fn is None:
        return _ineligible(name, "no function definition in source")
    for node in ast.walk(fn):
        if node is not fn and isinstance(node, (ast.FunctionDef,
                                                ast.AsyncFunctionDef,
                                                ast.Lambda)):
            return _ineligible(name, "nested function definition")
    env, classify = _effects_env(body, fn)
    helper_sites = _collect_helper_sites(fn, first_line, env)
    unknown = _unrecognized_yields(
        fn, first_line, frozenset(line for line, _ in helper_sites))
    if unknown:
        return _ineligible(
            name, f"unrecognized yield at line(s) {sorted(set(unknown))} "
            "(helper sub-generator?)")
    aliases = _collect_aliases(tree)
    sites = sites_in(fn, first_line, aliases)
    lines = ([site.lineno for site in sites]
             + [line for line, _ in helper_sites])
    if len(lines) != len(set(lines)):
        return _ineligible(name, "two node sites share a source line")

    walker = _PurityWalker(first_line, aliases, classify=classify,
                           helper_lines=dict(helper_sites))
    final = walker.walk(fn.body, {ENTRY_LINE: _BOTH}, None)
    for start, flags in final.items():
        walker._add_arc(start, EXIT_LINE, flags)

    successors: Dict[int, List[int]] = {}
    for (start, end) in walker.arcs:
        successors.setdefault(start, []).append(end)
    closed = {start: all(walker.arcs[(start, end)] & _PURE for end in ends)
              for start, ends in successors.items()}
    eligible = frozenset(arc for arc, flags in walker.arcs.items()
                         if flags & _PURE)
    zero = frozenset(arc for arc, flags in walker.arcs.items()
                     if flags & _ZERO)
    return SegmentPlan(name, True, "", eligible, zero,
                       {s: tuple(sorted(e)) for s, e in successors.items()},
                       closed)


#: Plans keyed by the body's code object *and* its closure-cell
#: contents: vocoder-style factory bodies share one code object across
#: all stage instances, but close over different helpers whose effect
#: classifications differ.  Each cache value pins strong references to
#: the keyed objects so their ids cannot be recycled after collection
#: (a bounded leak — one small tuple per distinct process body).
_PLAN_CACHE: Dict[tuple, Tuple[SegmentPlan, tuple]] = {}


def plan_for(body) -> SegmentPlan:
    code = getattr(body, "__code__", None)
    if code is None:
        return build_plan(body)
    cells = []
    for cell in getattr(body, "__closure__", None) or ():
        try:
            cells.append(cell.cell_contents)
        except ValueError:  # not-yet-filled cell
            cells.append(cell)
    key = (id(code), tuple(id(obj) for obj in cells))
    entry = _PLAN_CACHE.get(key)
    if entry is not None:
        return entry[0]
    plan = build_plan(body)
    _PLAN_CACHE[key] = (plan, (code, tuple(cells)))
    return plan


# ---------------------------------------------------------------------------
# The runtime engine
# ---------------------------------------------------------------------------

class FastForwardEngine(SchedulerObserver):
    """Scheduler observer implementing segment fast-forwarding.

    Must be attached **in front of** every observer that reads the cost
    context at node boundaries (``add_observer(engine, front=True)``):
    when a suppressed segment ends, the engine re-installs the context
    and replays the recorded bundle before trackers and profilers look
    at it, so downstream accounting is indistinguishable from a
    dynamically charged run.

    ``check=True`` turns the engine into a differential verifier: it
    never suppresses, but asserts every re-execution of an eligible arc
    reproduces the recorded bundle exactly.
    """

    def __init__(self, contexts: Dict[int, CostContext], check: bool = False):
        self._contexts = contexts
        self.check = check
        #: Optional veto ``gate(process, now) -> bool``: when it returns
        #: False the engine neither records a bundle nor begins a new
        #: suppression at this node (replays of already-committed
        #: suppressions still complete).  The fault injector installs
        #: its faulted-window gate here so perturbed executions are
        #: never characterized and faulted windows charge dynamically.
        self.gate = None
        self._plans: Dict[int, Optional[SegmentPlan]] = {}
        self._bundles: Dict[Tuple[int, Arc], Bundle] = {}
        self._last: Dict[int, int] = {}
        self._suppressed: Set[int] = set()
        self._pending: Set[int] = set()
        #: counters for reports/tests
        self.characterized = 0
        self.preseeded = 0
        self.replayed = 0
        self.checked = 0
        #: static-plan counters, accumulated as processes start
        self.plans = 0
        self.eligible_arcs = 0
        self.eligible_compute_arcs = 0
        self.zero_charge_arcs = 0

    # -- queries -----------------------------------------------------------

    def is_suppressed(self, pid: int) -> bool:
        return pid in self._suppressed

    def plan_of(self, process: Process) -> Optional[SegmentPlan]:
        return self._plans.get(process.pid)

    def describe(self) -> str:
        mode = "check" if self.check else "fast-forward"
        return (f"{mode}: {self.characterized} arc(s) characterized "
                f"dynamically, {self.preseeded} seeded statically, "
                f"{self.replayed} replayed, {self.checked} checked")

    def stats(self) -> Dict[str, object]:
        """Machine-readable counters (bench reports gate on these)."""
        return {
            "mode": "check" if self.check else "fast-forward",
            "plans": self.plans,
            "eligible_arcs": self.eligible_arcs,
            "eligible_compute_arcs": self.eligible_compute_arcs,
            "zero_charge_arcs": self.zero_charge_arcs,
            "characterized": self.characterized,
            "preseeded": self.preseeded,
            "replayed": self.replayed,
            "checked": self.checked,
        }

    # -- observer callbacks ------------------------------------------------

    def _prepare(self, process: Process) -> Optional[SegmentPlan]:
        pid = process.pid
        if self._contexts.get(pid) is None:
            plan = None  # environment process: nothing to fast-forward
        else:
            candidate = plan_for(getattr(process, "body", None))
            plan = candidate if candidate.ok else None
        if plan is not None:
            self.plans += 1
            self.eligible_arcs += len(plan.eligible)
            self.zero_charge_arcs += len(plan.zero_charge)
            # "Compute" arcs run between two real node sites and charge
            # something — the segments fast-forwarding actually saves on.
            self.eligible_compute_arcs += sum(
                1 for arc in plan.eligible
                if arc not in plan.zero_charge
                and arc[0] > 0 and arc[1] > 0)
            for arc in plan.zero_charge:
                if (pid, arc) not in self._bundles:
                    self._bundles[(pid, arc)] = _ZERO_BUNDLE
                    self.preseeded += 1
        self._plans[pid] = plan
        self._last[pid] = ENTRY_LINE
        return plan

    def on_process_start(self, process: Process, now: SimTime) -> None:
        self._prepare(process)

    def on_node_reached(self, process: Process, command: Command,
                        now: SimTime, delta: int) -> None:
        pid = process.pid
        if pid not in self._plans:
            self._prepare(process)
        plan = self._plans[pid]
        if plan is None:
            return
        ctx = self._contexts.get(pid)
        if ctx is None:
            return
        if isinstance(command, ProcessExit):
            line = EXIT_LINE
        else:
            frame = getattr(process.generator, "gi_frame", None)
            line = frame.f_lineno if frame is not None else EXIT_LINE
        arc = (self._last[pid], line)
        allowed = self.gate is None or self.gate(process, now)

        if pid in self._suppressed:
            self._suppressed.discard(pid)
            # Re-attach before any other observer reads the context.
            set_current(ctx)
            bundle = self._bundles.get((pid, arc))
            if bundle is None:
                raise AnnotationError(
                    f"fast-forward of {process.full_name!r} reached "
                    f"uncharacterized segment {arc}; the static graph "
                    "missed a possible successor — report this"
                )
            ctx.apply_snapshot(*bundle)
            self.replayed += 1
        elif allowed and arc in plan.eligible:
            key = (pid, arc)
            snapshot = ctx.segment_snapshot()
            recorded = self._bundles.get(key)
            if recorded is None:
                self._bundles[key] = snapshot
                self.characterized += 1
            elif self.check:
                self.checked += 1
                if recorded != snapshot:
                    raise AnnotationError(
                        f"fast-forward check failed for "
                        f"{process.full_name!r} segment {arc}: first "
                        f"execution charged {recorded}, this one "
                        f"{snapshot} — the segment is not "
                        "execution-independent (analysis bug)"
                    )

        self._last[pid] = line
        # Suppress the next segment only when every statically possible
        # continuation is eligible and already characterized.
        if not self.check and allowed and plan.closed.get(line):
            bundles = self._bundles
            if all((pid, (line, nxt)) in bundles
                   for nxt in plan.successors[line]):
                self._pending.add(pid)

    def on_node_finished(self, process: Process, command: Command,
                         now: SimTime, delta: int) -> None:
        pid = process.pid
        if pid in self._pending:
            self._pending.discard(pid)
            self._suppressed.add(pid)
            set_current(None)

    def on_process_exit(self, process: Process, now: SimTime) -> None:
        self._pending.discard(process.pid)
        self._suppressed.discard(process.pid)
