"""Dynamic segment tracking (paper §2).

The library "can dynamically recognize the processes but cannot directly
recognize which segment is being executed" — in C++ a parser must insert
marks.  Python generators let us do better: when a process suspends at a
node, its generator frame records the source line of the ``yield
from``/``yield`` statement, which identifies the access site exactly.
The :class:`SegmentTracker` observer uses (kind, channel.operation,
line) as the node identity, builds each process's
:class:`~repro.segments.graph.ProcessGraph` on the fly, and aggregates
per-segment cost statistics from the active cost context.

Explicit ``yield Mark("label")`` commands are still supported and are
attached to the enclosing segment — useful when one source line hosts
several accesses, or for user-meaningful names in reports.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..annotate.context import current_context
from ..kernel.commands import ChannelAccess, Command, ProcessExit, WaitFor
from ..kernel.process import Process
from ..kernel.scheduler import SchedulerObserver
from ..kernel.time import SimTime
from .graph import NodeId, ProcessGraph, SegmentStats


def node_id_for(process: Process, command: Command) -> NodeId:
    """Derive the stable node identity for a yielded node command."""
    frame = getattr(process.generator, "gi_frame", None)
    site = frame.f_lineno if frame is not None else 0
    if isinstance(command, ChannelAccess):
        channel_name = getattr(command.channel, "name", "?")
        return NodeId("channel", f"{channel_name}.{command.operation}", site)
    if isinstance(command, WaitFor):
        return NodeId("wait", "", site)
    if isinstance(command, ProcessExit):
        return NodeId("exit")
    return NodeId("node", repr(command), site)


class SegmentTracker(SchedulerObserver):
    """Observer that reconstructs process graphs and segment statistics.

    With ``record_instantaneous=True`` every individual segment
    execution is kept as ``(time_fs, segment_label, cycles)`` — the
    paper's "instantaneous estimated parameters for each process",
    needed for hard-real-time style analyses.
    """

    def __init__(self, record_instantaneous: bool = False):
        self.graphs: Dict[str, ProcessGraph] = {}
        self._last_node: Dict[str, NodeId] = {}
        self._pending_marks: Dict[str, List[str]] = {}
        self.record_instantaneous = record_instantaneous
        self.instantaneous: Dict[str, List[Tuple[int, str, float]]] = {}
        #: Charge hooks ``fn(process, node, now, ctx)`` called at every
        #: node *before* the segment totals are read — i.e. before both
        #: the tracker's statistics and the timing agent consume them
        #: (observers run ahead of agents at a node).  The fault
        #: injector's segment-time perturbations mutate ``ctx`` here.
        self.charge_hooks: List = []

    # -- observer callbacks ------------------------------------------------

    def on_process_start(self, process: Process, now: SimTime) -> None:
        graph = ProcessGraph(process.full_name)
        self.graphs[process.full_name] = graph
        self._last_node[process.full_name] = graph.entry
        self._pending_marks[process.full_name] = []
        if self.record_instantaneous:
            self.instantaneous[process.full_name] = []

    def on_node_reached(self, process: Process, command: Command,
                        now: SimTime, delta: int) -> None:
        name = process.full_name
        graph = self.graphs.get(name)
        if graph is None:  # process registered before tracker attached
            self.on_process_start(process, now)
            graph = self.graphs[name]

        node = node_id_for(process, command)
        graph.touch_node(node)

        cycles = 0.0
        critical_path = 0.0
        ctx = current_context()
        if ctx is not None:
            if self.charge_hooks:
                for hook in self.charge_hooks:
                    hook(process, node, now, ctx)
            cycles, critical_path = ctx.segment_totals()
            # For SW contexts segment_totals returns (sum, sum); keep the
            # pair as (worst, best) uniformly.
            cycles, critical_path = cycles, critical_path

        stats = graph.touch_segment(self._last_node[name], node,
                                    cycles, critical_path)
        marks = self._pending_marks[name]
        if marks:
            for label in marks:
                if label not in stats.marks:
                    stats.marks.append(label)
            marks.clear()

        if self.record_instantaneous:
            self.instantaneous[name].append(
                (now.femtoseconds, stats.label, cycles)
            )
        self._last_node[name] = node

    def on_mark(self, process: Process, label: str,
                now: SimTime, delta: int) -> None:
        self._pending_marks.setdefault(process.full_name, []).append(label)

    # -- queries -----------------------------------------------------------

    def graph_of(self, process_name: str) -> ProcessGraph:
        return self.graphs[process_name]

    def segment(self, process_name: str, start_label: str,
                end_label: str) -> Optional[SegmentStats]:
        graph = self.graphs.get(process_name)
        if graph is None:
            return None
        return graph.segment(start_label, end_label)

    def report_lines(self) -> List[str]:
        """A plain-text per-segment report (paper's 'exact segment level
        report')."""
        lines = []
        for name in sorted(self.graphs):
            graph = self.graphs[name]
            lines.append(f"process {name}: {len(graph.nodes)} nodes, "
                         f"{len(graph.segments)} segments")
            for stats in graph.segments.values():
                start = graph.nodes[stats.start].label
                end = graph.nodes[stats.end].label
                mark_note = f"  marks={stats.marks}" if stats.marks else ""
                low, high = stats.confidence_interval()
                ci_note = ""
                if stats.executions > 1 and high > low:
                    ci_note = f"  ci95=[{low:.1f},{high:.1f}]"
                lines.append(
                    f"  {stats.label} ({start}->{end}) x{stats.executions}"
                    f"  mean={stats.mean_cycles:.1f} cyc"
                    f"  min={0.0 if stats.executions == 0 else stats.min_cycles:.1f}"
                    f"  max={stats.max_cycles:.1f}{ci_note}{mark_note}"
                )
        return lines
