"""Human-readable rendering of dependability reports.

The JSON report (see :mod:`repro.inject.analyzer`) is the machine
interface; this module turns it into the terminal summary printed by
``repro inject``: outcome totals, per-kind breakdown, failure rate,
MTTF and the detection-latency distribution.
"""

from __future__ import annotations

import json
from typing import List


def _fmt_ns(value) -> str:
    if value is None:
        return "-"
    if value >= 1e6:
        return f"{value / 1e6:.3f} ms"
    if value >= 1e3:
        return f"{value / 1e3:.3f} us"
    return f"{value:.1f} ns"


def render_report(report: dict) -> List[str]:
    """Render the report as terminal lines."""
    scenario = report["scenario"]
    metrics = report["metrics"]
    golden = report["golden"]
    lines = [
        f"dependability report — workload {scenario['workload']!r}, "
        f"{scenario['frames']} frame(s), seed {report['seed']}",
        f"  faultload: {metrics['runs']} injection(s), "
        f"hash {report['faultload_hash'][:12]}",
        f"  golden: end {golden['end_fs'] / 1e6:.0f} ns, "
        f"checksum {golden['checksum']}",
        "",
        f"  outcome     runs   rate",
        f"  silent    {metrics['silent']:6d}   "
        f"{metrics['silent'] / max(1, metrics['runs']):6.1%}",
        f"  detected  {metrics['detected']:6d}   "
        f"{metrics['detection_rate']:6.1%}",
        f"  failed    {metrics['failed']:6d}   "
        f"{metrics['failure_rate']:6.1%}",
        "",
        f"  activated: {metrics['activated']}/{metrics['runs']}"
        f"   MTTF: {_fmt_ns(metrics['mttf_ns'])}",
    ]
    latency = metrics["detection_latency_ns"]
    if latency is not None:
        lines.append(
            f"  detection latency ({latency['count']} detection(s)): "
            f"min {_fmt_ns(latency['min_ns'])}, "
            f"p50 {_fmt_ns(latency['p50_ns'])}, "
            f"mean {_fmt_ns(latency['mean_ns'])}, "
            f"max {_fmt_ns(latency['max_ns'])}")
    if metrics["by_kind"]:
        lines.append("")
        lines.append("  kind                 runs  silent  detected  failed")
        for kind, bucket in metrics["by_kind"].items():
            lines.append(
                f"  {kind:<20} {bucket['runs']:4d}  {bucket['silent']:6d}"
                f"  {bucket['detected']:8d}  {bucket['failed']:6d}")
    return lines


def write_report(report: dict, path) -> None:
    """Write the JSON report (stable key order) to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
