"""repro.inject — model-level fault injection and dependability reporting.

The subsystem has four layers, mirroring an SBFI flow:

* :mod:`~repro.inject.vocabulary` — the fault taxonomy shared with the
  infra-level harness (:mod:`repro.batch.faults`),
* :mod:`~repro.inject.faultload` — deterministic ``(spec, seed) →``
  injection-schedule generation,
* :mod:`~repro.inject.adapters` — non-intrusive application of a
  schedule through the kernel/segment hook points,
* :mod:`~repro.inject.analyzer` / :mod:`~repro.inject.report` — the
  campaign sweep, silent/detected/failed classification and the
  dependability report (failure rate, MTTF, detection latency).

Import order matters for the batch bridge: ``vocabulary`` must load
before ``analyzer`` pulls in the batch submodules, because
``repro.batch.faults`` imports the vocabulary back.
"""

from .vocabulary import (
    FAULT_KINDS,
    FaultKind,
    FaultRecord,
    INFRA_KINDS,
    LAYER_INFRA,
    LAYER_MODEL,
    MODEL_KINDS,
    behavior_kind,
    fault_kind,
)
from .faultload import (
    CHANNEL_KINDS,
    DEFAULT_KINDS,
    FaultSpec,
    Faultload,
    Injection,
    PROCESS_KINDS,
    SEGMENT_KINDS,
    generate_faultload,
    merged_windows,
)
from .adapters import AppliedFault, Injector
from .scenario import (
    CHANNEL_ADDRESSES,
    PROCESS_ADDRESSES,
    run_scenario,
)
from .analyzer import (
    Classification,
    DependabilityAnalysis,
    OUTCOME_DETECTED,
    OUTCOME_FAILED,
    OUTCOME_SILENT,
    classify_run,
)
from .report import render_report, write_report

__all__ = [
    "FAULT_KINDS", "FaultKind", "FaultRecord", "INFRA_KINDS",
    "LAYER_INFRA", "LAYER_MODEL", "MODEL_KINDS", "behavior_kind",
    "fault_kind",
    "CHANNEL_KINDS", "DEFAULT_KINDS", "FaultSpec", "Faultload",
    "Injection", "PROCESS_KINDS", "SEGMENT_KINDS", "generate_faultload",
    "merged_windows",
    "AppliedFault", "Injector",
    "CHANNEL_ADDRESSES", "PROCESS_ADDRESSES", "run_scenario",
    "Classification", "DependabilityAnalysis", "OUTCOME_DETECTED",
    "OUTCOME_FAILED", "OUTCOME_SILENT", "classify_run",
    "render_report", "write_report",
]
