"""Shared fault vocabulary: one taxonomy for every injected failure.

The repository injects faults at two very different layers, and before
this module each layer named its faults with its own ad-hoc strings:

* the **infra** layer (:mod:`repro.batch.faults` and the ``probe``
  runner) perturbs the campaign machinery itself — worker processes
  die or stall, cache entries are torn or trashed by foreign writers;
* the **model** layer (:mod:`repro.inject`) perturbs the *simulated
  design* — channel payloads flip bits, processes get stuck or are
  killed, segment charge times drift, kernel events are dropped or
  delayed.

Both layers now draw their kinds from the registry below, and both
log what they actually did as :class:`FaultRecord` provenance entries,
so a dependability report can attribute any observed failure back to
the fault that caused it using one schema.

Kind names are stable identifiers (they appear in cached payloads and
golden reports); add new kinds, never rename existing ones.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

LAYER_MODEL = "model"
LAYER_INFRA = "infra"


@dataclasses.dataclass(frozen=True)
class FaultKind:
    """One entry of the fault taxonomy.

    ``probe_behavior`` is the legacy ``probe``-runner behavior string
    an infra kind corresponds to (empty for model kinds and for infra
    kinds injected outside the probe runner).
    """

    name: str
    layer: str
    description: str
    probe_behavior: str = ""


# -- model-level kinds (applied to the simulated design) ---------------

PAYLOAD_BITFLIP = FaultKind(
    "payload-bitflip", LAYER_MODEL,
    "XOR one bit of an integer channel payload at a chosen access")
PAYLOAD_VALUE = FaultKind(
    "payload-value", LAYER_MODEL,
    "replace a channel payload with an arbitrary value")
PROCESS_STUCK = FaultKind(
    "process-stuck", LAYER_MODEL,
    "stuck-at: the process is never scheduled again after the fault")
PROCESS_KILL = FaultKind(
    "process-kill", LAYER_MODEL,
    "terminate the process immediately (generator closed, exit fires)")
SEGMENT_TIME = FaultKind(
    "segment-time", LAYER_MODEL,
    "scale the charge time of a segment reaching its sync node")
EVENT_DROP = FaultKind(
    "event-drop", LAYER_MODEL,
    "silently discard a timed kernel event aimed at the process")
EVENT_DELAY = FaultKind(
    "event-delay", LAYER_MODEL,
    "postpone a timed kernel event aimed at the process")

# -- infra-level kinds (applied to the campaign machinery) -------------

WORKER_DEATH = FaultKind(
    "worker-death", LAYER_INFRA,
    "hard-exit a campaign worker mid-run (pipe EOF, no result)",
    probe_behavior="die")
WORKER_STALL = FaultKind(
    "worker-stall", LAYER_INFRA,
    "first attempt sleeps past the timeout, retry succeeds",
    probe_behavior="slow-then-ok")
CACHE_FOREIGN_CORRUPT = FaultKind(
    "cache-foreign-corrupt", LAYER_INFRA,
    "a foreign writer trashes a cache entry with non-JSON garbage",
    probe_behavior="corrupt-cache")
CACHE_IO_GET = FaultKind(
    "cache-io-get", LAYER_INFRA,
    "a cache read raises an I/O error instead of returning the entry")
CACHE_IO_PUT = FaultKind(
    "cache-io-put", LAYER_INFRA,
    "a cache write raises an I/O error instead of storing the entry")
CACHE_TORN_PUT = FaultKind(
    "cache-torn-put", LAYER_INFRA,
    "a cache write silently stores a truncated (torn) entry")

_ALL_KINDS: Tuple[FaultKind, ...] = (
    PAYLOAD_BITFLIP, PAYLOAD_VALUE, PROCESS_STUCK, PROCESS_KILL,
    SEGMENT_TIME, EVENT_DROP, EVENT_DELAY,
    WORKER_DEATH, WORKER_STALL, CACHE_FOREIGN_CORRUPT,
    CACHE_IO_GET, CACHE_IO_PUT, CACHE_TORN_PUT,
)

FAULT_KINDS: Dict[str, FaultKind] = {kind.name: kind for kind in _ALL_KINDS}

MODEL_KINDS: Tuple[str, ...] = tuple(
    kind.name for kind in _ALL_KINDS if kind.layer == LAYER_MODEL)
INFRA_KINDS: Tuple[str, ...] = tuple(
    kind.name for kind in _ALL_KINDS if kind.layer == LAYER_INFRA)


def fault_kind(name: str) -> FaultKind:
    """Resolve a kind name, raising ``ValueError`` for unknown names."""
    try:
        return FAULT_KINDS[name]
    except KeyError:
        known = ", ".join(sorted(FAULT_KINDS))
        raise ValueError(f"unknown fault kind {name!r} (known: {known})")


def behavior_kind(behavior: str) -> Optional[FaultKind]:
    """Map a legacy probe-behavior string to its taxonomy entry."""
    for kind in _ALL_KINDS:
        if kind.probe_behavior and kind.probe_behavior == behavior:
            return kind
    return None


@dataclasses.dataclass(frozen=True)
class FaultRecord:
    """Provenance of one *applied* fault, shared by both layers.

    ``target`` is a structural address: ``channel:<name>.<operation>``,
    ``process:<full_name>`` or ``segment:<full_name>`` at the model
    level, ``cache:<op>:<key-prefix>`` or ``worker:<name>`` at the
    infra level.  ``time_fs`` is the simulated time of application
    (``-1`` for infra faults, which happen outside simulated time).
    """

    kind: str
    target: str
    time_fs: int = -1
    detail: str = ""

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "target": self.target,
            "time_fs": self.time_fs,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultRecord":
        return cls(
            kind=str(data["kind"]),
            target=str(data["target"]),
            time_fs=int(data.get("time_fs", -1)),
            detail=str(data.get("detail", "")),
        )
