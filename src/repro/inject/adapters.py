"""Injection adapters: apply a faultload to a live simulation.

The adapters are non-intrusive by construction — they attach only to
the hook points the kernel and segment layers expose:

* channel **payload filters** (:class:`~repro.kernel.channels.Channel`)
  for bit flips and value corruption,
* the scheduler's **scheduled actions** for killing / stalling a
  process at its window start,
* the scheduler's **timed-entry filter** for dropping or delaying
  timed kernel events aimed at a process,
* the segment tracker's **charge hooks** for scaling a segment's
  accumulated time before the tracker and the timing agent read it,
* the fast-forward engine's **gate**, so that inside any faulted
  window the engine neither records nor begins replaying segment
  bundles — faulted windows always charge through the normal dynamic
  machinery.

Workload and scenario sources are never edited, so the single-source
methodology (and the RPR lint corpus) is untouched.  Every fault the
injector actually lands is logged as an :class:`AppliedFault` carrying
the shared :class:`~repro.inject.vocabulary.FaultRecord` provenance.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..errors import ElaborationError, InjectError
from ..kernel.scheduler import _ACTION, _EVENT_WAKE, _NEGOTIATE, _RESUME
from ..kernel.simulator import Simulator
from ..kernel.time import SimTime
from .faultload import Injection, merged_windows
from .vocabulary import (
    EVENT_DELAY, EVENT_DROP, FaultRecord, PAYLOAD_BITFLIP, PAYLOAD_VALUE,
    PROCESS_KILL, PROCESS_STUCK, SEGMENT_TIME,
)

PPM = 1_000_000.0


@dataclasses.dataclass(frozen=True)
class AppliedFault:
    """Provenance of one injection that actually landed."""

    injection: int
    record: FaultRecord

    def as_dict(self) -> dict:
        data = self.record.as_dict()
        data["injection"] = self.injection
        return data


def _parse_target(injection: Injection) -> Tuple[str, str]:
    scheme, _, rest = injection.target.partition(":")
    if not rest:
        raise InjectError(f"malformed injection target {injection.target!r}")
    return scheme, rest


class Injector:
    """Applies a schedule of injections to one simulator via the hooks.

    Accepts any sequence of :class:`Injection` records — the whole
    schedule of a :class:`~repro.inject.faultload.Faultload` (pass
    ``load.injections``) or the single record of one campaign run.
    """

    def __init__(self, injections):
        self.injections: Tuple[Injection, ...] = tuple(injections)
        self.applied: List[AppliedFault] = []
        self._hits: Dict[int, int] = {}     # injection index -> opportunities seen
        self._fired: set = set()            # injection indices already applied
        self._windows = merged_windows(self.injections)
        self._scheduler = None

    # -- wiring ------------------------------------------------------------

    def attach(self, simulator: Simulator, library=None) -> "Injector":
        """Install every adapter the faultload needs.

        ``library`` (a :class:`~repro.core.PerformanceLibrary`) is
        required only when the faultload contains segment-time faults;
        its fast-forward engine, when present, is gated on the faulted
        windows.
        """
        self._scheduler = simulator.scheduler
        channel_groups: Dict[str, List[Tuple[Injection, str]]] = {}
        event_faults: List[Injection] = []
        segment_faults: List[Injection] = []
        processes = {p.full_name: p for p in simulator.iter_processes()}

        for injection in self.injections:
            scheme, address = _parse_target(injection)
            if scheme == "channel":
                name, _, operation = address.rpartition(".")
                if not name:
                    raise InjectError(
                        f"channel target {injection.target!r} must be "
                        f"'channel:<name>.<operation>'")
                try:
                    simulator.channel(name)  # fail fast on unknown channels
                except ElaborationError as exc:
                    raise InjectError(
                        f"injection targets unknown channel: {exc}")
                channel_groups.setdefault(name, []).append(
                    (injection, operation))
            elif scheme == "process":
                process = processes.get(address)
                if process is None:
                    raise InjectError(
                        f"injection targets unknown process {address!r}")
                if injection.kind in (PROCESS_KILL.name, PROCESS_STUCK.name):
                    self._schedule_process_fault(injection, process)
                elif injection.kind in (EVENT_DROP.name, EVENT_DELAY.name):
                    event_faults.append(injection)
                else:
                    raise InjectError(
                        f"kind {injection.kind!r} cannot target a process")
            elif scheme == "segment":
                if address not in processes:
                    raise InjectError(
                        f"injection targets unknown process {address!r}")
                segment_faults.append(injection)
            else:
                raise InjectError(
                    f"unknown target scheme in {injection.target!r}")

        for name, group in channel_groups.items():
            self._install_payload_filter(simulator.channel(name), group)
        if event_faults:
            self._install_timed_filter(simulator.scheduler, event_faults)
        if segment_faults:
            if library is None:
                raise InjectError(
                    "segment-time faults need an attached performance "
                    "library (pass library= to Injector.attach)")
            self._install_charge_hook(library.tracker, segment_faults)
        if library is not None and library.engine is not None:
            library.engine.gate = self._gate
        return self

    # -- window / ordinal bookkeeping --------------------------------------

    def _in_window(self, now_fs: int) -> bool:
        for start, end in self._windows:
            if start <= now_fs < end:
                return True
            if start > now_fs:
                break
        return False

    def _gate(self, process, now: SimTime) -> bool:
        return not self._in_window(now.femtoseconds)

    def _due(self, injection: Injection, now_fs: int) -> bool:
        """Count one matching opportunity; True when the fault fires."""
        if injection.index in self._fired:
            return False
        start, end = injection.window_fs
        if not start <= now_fs < end:
            return False
        seen = self._hits.get(injection.index, 0)
        self._hits[injection.index] = seen + 1
        return seen == injection.ordinal

    def _record(self, injection: Injection, time_fs: int, detail: str) -> None:
        self._fired.add(injection.index)
        self.applied.append(AppliedFault(
            injection=injection.index,
            record=FaultRecord(kind=injection.kind, target=injection.target,
                               time_fs=time_fs, detail=detail)))

    # -- channel payload faults ---------------------------------------------

    def _install_payload_filter(self, channel, group) -> None:
        def corrupt(chan, operation, value, group=group):
            now_fs = chan.scheduler.now.femtoseconds
            for injection, wanted_op in group:
                if operation != wanted_op:
                    continue
                if not self._due(injection, now_fs):
                    continue
                if injection.kind == PAYLOAD_BITFLIP.name:
                    if not isinstance(value, int):
                        # The bit-flip model is defined on integer
                        # payloads; a non-integer at the struck access
                        # leaves the value intact (fault not activated).
                        continue
                    flipped = value ^ (1 << injection.argument)
                    self._record(injection, now_fs,
                                 f"{operation}: {value} -> {flipped}")
                    value = flipped
                elif injection.kind == PAYLOAD_VALUE.name:
                    self._record(injection, now_fs,
                                 f"{operation}: {value!r} -> {injection.argument}")
                    value = injection.argument
            return value

        channel.payload_filters.append(corrupt)

    # -- process faults ------------------------------------------------------

    def _schedule_process_fault(self, injection: Injection, process) -> None:
        scheduler = self._scheduler

        def strike(injection=injection, process=process):
            now_fs = scheduler.now.femtoseconds
            if process.done or injection.index in self._fired:
                return
            if injection.kind == PROCESS_KILL.name:
                scheduler.kill_process(process)
                self._record(injection, now_fs, "killed")
            else:
                scheduler.stall_process(process)
                self._record(injection, now_fs, "stalled")

        # The action fires at the window start: ordinal is meaningless
        # for one-shot process faults (exactly one opportunity).
        scheduler.schedule_action(SimTime(injection.window_fs[0]), strike)

    # -- event faults ---------------------------------------------------------

    def _install_timed_filter(self, scheduler, faults: List[Injection]) -> None:
        targets = {}
        for injection in faults:
            _, address = _parse_target(injection)
            targets.setdefault(address, []).append(injection)

        def filter_timed(when, kind, payload):
            if kind == _ACTION:
                return when
            if kind == _RESUME or kind == _EVENT_WAKE:
                process = payload[0]
            elif kind == _NEGOTIATE:
                process = payload
            else:  # pragma: no cover - future kinds pass through
                return when
            group = targets.get(process.full_name)
            if not group:
                return when
            now_fs = scheduler.now.femtoseconds
            for injection in group:
                if not self._due(injection, now_fs):
                    continue
                if injection.kind == EVENT_DROP.name:
                    self._record(injection, now_fs, f"dropped {kind}")
                    return None
                delayed = when + SimTime(injection.argument)
                self._record(
                    injection, now_fs,
                    f"delayed {kind} by {injection.argument} fs")
                return delayed
            return when

        if scheduler.timed_filter is not None:
            raise InjectError("scheduler already has a timed filter installed")
        scheduler.timed_filter = filter_timed

    # -- segment-time faults ---------------------------------------------------

    def _install_charge_hook(self, tracker, faults: List[Injection]) -> None:
        targets: Dict[str, List[Injection]] = {}
        for injection in faults:
            _, address = _parse_target(injection)
            targets.setdefault(address, []).append(injection)

        def perturb(process, node, now, ctx):
            group = targets.get(process.full_name)
            if not group:
                return
            now_fs = now.femtoseconds
            for injection in group:
                if not self._due(injection, now_fs):
                    continue
                factor = injection.argument / PPM
                ctx.scale_segment(factor)
                self._record(injection, now_fs,
                             f"segment time x{factor:g} at {node.describe()}")

        tracker.charge_hooks.append(perturb)
