"""Deterministic faultload generation for model-level injection.

SBFI-style campaigns (DAVOS) separate *what could go wrong* (the fault
model) from *what we actually inject* (the faultload): the generator
below expands a :class:`FaultSpec` plus an integer seed into a fixed
schedule of :class:`Injection` records, each carrying a structural
address, a simulated-time window, an activation ordinal and the fault
argument.  The expansion is a pure function of ``(spec, seed)``:

* randomness comes from ``random.Random`` seeded with an integer
  derived from the canonical spec JSON via SHA-256 — never from
  ``hash()`` (which varies across interpreter launches) — so the same
  inputs produce byte-identical schedules in-process and in freshly
  spawned workers;
* every injection embeds the seed it was drawn from, which makes the
  disjointness of schedules from different seeds structural rather
  than probabilistic.

``Faultload.hash()`` fingerprints the whole schedule; the analyzer
folds it into each ``RunConfig`` so campaign cache keys change exactly
when the faultload does.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import random
from typing import Dict, Tuple

from .vocabulary import (
    EVENT_DELAY, EVENT_DROP, LAYER_MODEL, PAYLOAD_BITFLIP, PAYLOAD_VALUE,
    PROCESS_KILL, PROCESS_STUCK, SEGMENT_TIME, fault_kind,
)

FS_PER_NS = 1_000_000

#: Kinds targeting a channel access ("channel:<name>.<operation>").
CHANNEL_KINDS = (PAYLOAD_BITFLIP.name, PAYLOAD_VALUE.name)
#: Kinds targeting a process by full name ("process:<full_name>").
PROCESS_KINDS = (PROCESS_STUCK.name, PROCESS_KILL.name,
                 EVENT_DROP.name, EVENT_DELAY.name)
#: Kinds targeting a process's segments ("segment:<full_name>").
SEGMENT_KINDS = (SEGMENT_TIME.name,)

DEFAULT_KINDS = CHANNEL_KINDS + PROCESS_KINDS + SEGMENT_KINDS


def _canonical_json(data) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """The fault model: what to draw injections from.

    ``channels`` lists channel access addresses (``"<name>.<op>"``)
    payload faults may hit; ``processes`` lists process full names the
    process/event/segment faults may hit.  Windows are placed uniformly
    inside ``[0, horizon_ns)`` with width ``window_ns``.
    """

    count: int
    kinds: Tuple[str, ...] = DEFAULT_KINDS
    channels: Tuple[str, ...] = ()
    processes: Tuple[str, ...] = ()
    horizon_ns: int = 1000
    window_ns: int = 100
    max_ordinal: int = 4
    bits: int = 16
    scale_min_ppm: int = 1_500_000
    scale_max_ppm: int = 8_000_000
    delay_min_ns: int = 10
    delay_max_ns: int = 500

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("count must be >= 0")
        if self.horizon_ns <= 0 or self.window_ns <= 0:
            raise ValueError("horizon_ns and window_ns must be positive")
        if self.max_ordinal <= 0:
            raise ValueError("max_ordinal must be positive")
        for name in self.kinds:
            kind = fault_kind(name)
            if kind.layer != LAYER_MODEL:
                raise ValueError(
                    f"faultloads inject model-level kinds only, got {name!r}")
            if name in CHANNEL_KINDS and not self.channels:
                raise ValueError(f"kind {name!r} needs a non-empty channels list")
            if name in PROCESS_KINDS + SEGMENT_KINDS and not self.processes:
                raise ValueError(f"kind {name!r} needs a non-empty processes list")

    def as_dict(self) -> dict:
        data = dataclasses.asdict(self)
        for key in ("kinds", "channels", "processes"):
            data[key] = list(data[key])
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        fields = {field.name for field in dataclasses.fields(cls)}
        kwargs = {key: value for key, value in data.items() if key in fields}
        for key in ("kinds", "channels", "processes"):
            if key in kwargs:
                kwargs[key] = tuple(kwargs[key])
        return cls(**kwargs)


@dataclasses.dataclass(frozen=True)
class Injection:
    """One scheduled fault: kind + address + window + ordinal + argument.

    ``ordinal`` counts matching opportunities inside the window (the
    n-th matching channel access / timed event); ``argument`` is the
    kind-specific payload: bit index for ``payload-bitflip``,
    replacement value for ``payload-value``, scale factor in ppm for
    ``segment-time``, delay in fs for ``event-delay``, 0 otherwise.
    """

    index: int
    kind: str
    target: str
    window_fs: Tuple[int, int]
    ordinal: int
    argument: int
    seed: int

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "kind": self.kind,
            "target": self.target,
            "window_fs": list(self.window_fs),
            "ordinal": self.ordinal,
            "argument": self.argument,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Injection":
        return cls(
            index=int(data["index"]),
            kind=str(data["kind"]),
            target=str(data["target"]),
            window_fs=(int(data["window_fs"][0]), int(data["window_fs"][1])),
            ordinal=int(data["ordinal"]),
            argument=int(data["argument"]),
            seed=int(data["seed"]),
        )


@dataclasses.dataclass(frozen=True)
class Faultload:
    """A fully expanded injection schedule plus its provenance."""

    spec: FaultSpec
    seed: int
    injections: Tuple[Injection, ...]

    def as_dict(self) -> dict:
        return {
            "spec": self.spec.as_dict(),
            "seed": self.seed,
            "injections": [inj.as_dict() for inj in self.injections],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Faultload":
        return cls(
            spec=FaultSpec.from_dict(data["spec"]),
            seed=int(data["seed"]),
            injections=tuple(
                Injection.from_dict(item) for item in data["injections"]),
        )

    def hash(self) -> str:
        """SHA-256 fingerprint of the canonical schedule JSON."""
        blob = _canonical_json(self.as_dict()).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()


def _rng_for(spec: FaultSpec, seed: int) -> random.Random:
    blob = _canonical_json({"spec": spec.as_dict(), "seed": seed})
    digest = hashlib.sha256(blob.encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest, "big"))


def generate_faultload(spec: FaultSpec, seed: int) -> Faultload:
    """Expand ``spec`` under ``seed`` into a deterministic schedule."""
    rng = _rng_for(spec, seed)
    horizon_fs = spec.horizon_ns * FS_PER_NS
    window_fs = spec.window_ns * FS_PER_NS
    injections = []
    for index in range(spec.count):
        kind = rng.choice(spec.kinds)
        start = rng.randrange(max(1, horizon_fs - window_fs))
        window = (start, start + window_fs)
        ordinal = rng.randrange(spec.max_ordinal)
        if kind in CHANNEL_KINDS:
            target = "channel:" + rng.choice(spec.channels)
        elif kind in SEGMENT_KINDS:
            target = "segment:" + rng.choice(spec.processes)
        else:
            target = "process:" + rng.choice(spec.processes)
        if kind == PAYLOAD_BITFLIP.name:
            argument = rng.randrange(spec.bits)
        elif kind == PAYLOAD_VALUE.name:
            argument = rng.randrange(1 << spec.bits)
        elif kind == SEGMENT_TIME.name:
            argument = rng.randrange(spec.scale_min_ppm, spec.scale_max_ppm)
        elif kind == EVENT_DELAY.name:
            argument = rng.randrange(
                spec.delay_min_ns, spec.delay_max_ns + 1) * FS_PER_NS
        else:
            argument = 0
        injections.append(Injection(
            index=index, kind=kind, target=target, window_fs=window,
            ordinal=ordinal, argument=argument, seed=seed))
    return Faultload(spec=spec, seed=seed, injections=tuple(injections))


def merged_windows(injections) -> Tuple[Tuple[int, int], ...]:
    """Union of the injections' windows, sorted and overlap-merged.

    The fast-forward gate uses this: inside any faulted window the
    engine must neither record nor begin replaying segment bundles.
    """
    spans = sorted(inj.window_fs for inj in injections)
    merged: list = []
    for start, end in spans:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return tuple(merged)


def injections_by_target(faultload: Faultload) -> Dict[str, list]:
    """Group injections by target address, preserving schedule order."""
    groups: Dict[str, list] = {}
    for injection in faultload.injections:
        groups.setdefault(injection.target, []).append(injection)
    return groups
