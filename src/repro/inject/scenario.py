"""The injectable reference scenario: a mapped, strict-timed pipeline.

One registry workload runs as the computation kernel of a three-stage
``driver → dut → monitor`` pipeline.  The environment driver streams
deterministic stimulus frames into a bounded FIFO; the DUT consumes a
frame, runs the annotated workload entry on a CPU resource, and writes
a digest of (stimulus, result) to the output FIFO; the environment
monitor folds the digests into a checksum.  Capture probes on the
output stream and on completion are the *only* observation channel —
detection is measured exactly the way the paper's §6 envisions
verification: as a side-effect of the timed simulation, through the
predefined channels, with zero instrumentation inside the workload.

``run_scenario`` is the body of the ``inject`` campaign runner: a pure
``params → payload`` function, deterministic for fixed parameters, so
its results are safely content-cacheable by :mod:`repro.batch`.
"""

from __future__ import annotations

from typing import Optional

from ..annotate.types import unwrap
from ..capture import CaptureBoard
from ..core import PerformanceLibrary
from ..errors import InjectError
from ..kernel.simulator import Simulator
from ..platform import EnvironmentResource, Mapping, make_cpu
from ..workloads import registry
from ..workloads.common import lcg_stream, wrap_args
from .adapters import Injector
from .faultload import Injection

DEFAULT_WORKLOAD = "fir"
DEFAULT_FRAMES = 3
DEFAULT_STIM_SEED = 1
_STIM_BOUND = 1 << 15
_CHECKSUM_MOD = 2147483647

#: Structural addresses the scenario exposes to faultload specs.
CHANNEL_ADDRESSES = ("stim.write", "stim.read", "out.write", "out.read")
PROCESS_ADDRESSES = ("top.dut",)


def _fold(value) -> int:
    """Collapse a workload result of any shape into one integer."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return int(value * 4096.0)
    if isinstance(value, (list, tuple)):
        acc = 0
        for item in value:
            acc = (acc * 31 + _fold(item)) % _CHECKSUM_MOD
        return acc
    if value is None:
        return 0
    return len(str(value))


def _digest(stimulus: int, folded: int) -> int:
    return (stimulus * 2654435761 + folded) % _CHECKSUM_MOD


def run_scenario(params: dict) -> dict:
    """Run the pipeline once, with at most the faults in ``params``.

    Recognized parameters: ``workload`` (registry name), ``frames``,
    ``stim_seed``, ``fastforward`` (bool), ``injection`` (a canonical
    :class:`~repro.inject.faultload.Injection` dict, or a list of
    them, or ``None`` for the fault-free golden) and ``faultload``
    (the schedule hash, echoed into the payload for provenance — it is
    part of the cache key).
    """
    workload = str(params.get("workload", DEFAULT_WORKLOAD))
    frames = int(params.get("frames", DEFAULT_FRAMES))
    stim_seed = int(params.get("stim_seed", DEFAULT_STIM_SEED))
    fastforward = bool(params.get("fastforward", True))
    raw_injection = params.get("injection")

    try:
        functions, make_args = registry()[workload]
    except KeyError:
        known = ", ".join(sorted(registry()))
        raise InjectError(f"unknown workload {workload!r} (known: {known})")
    entry = functions[0]

    simulator = Simulator()
    stim = simulator.fifo("stim", capacity=2)
    out = simulator.fifo("out", capacity=2)
    top = simulator.module("top")
    board = CaptureBoard(simulator)
    out_probe = board.point("out")
    done_probe = board.point("done")
    stimulus = lcg_stream(stim_seed, frames, _STIM_BOUND)

    def driver():
        for value in stimulus:
            yield from stim.write(value)

    def dut():
        for _ in range(frames):
            value = yield from stim.read()
            result = entry(*wrap_args(make_args()))
            yield from out.write(_digest(value, _fold(unwrap(result))))

    def monitor():
        checksum = 0
        for _ in range(frames):
            value = yield from out.read()
            out_probe(value)
            checksum = (checksum * 31 + _fold(value)) % _CHECKSUM_MOD
        done_probe(checksum)

    driver_proc = top.add_process(driver, name="driver")
    dut_proc = top.add_process(dut, name="dut")
    monitor_proc = top.add_process(monitor, name="monitor")

    mapping = Mapping()
    environment = EnvironmentResource("env")
    mapping.assign(dut_proc, make_cpu("cpu0"))
    mapping.assign(driver_proc, environment)
    mapping.assign(monitor_proc, environment)
    library = PerformanceLibrary(mapping, fastforward=fastforward)
    library.attach(simulator)

    injector: Optional[Injector] = None
    if raw_injection is not None:
        if isinstance(raw_injection, dict):
            raw_injection = [raw_injection]
        injections = [Injection.from_dict(item) for item in raw_injection]
        injector = Injector(injections).attach(simulator, library=library)

    final = simulator.run()

    payload = {
        "workload": workload,
        "frames": frames,
        "stim_seed": stim_seed,
        "fastforward": fastforward,
        "faultload": params.get("faultload"),
        "injection": params.get("injection"),
        "frames_completed": len(out_probe.events),
        "out_events": [[e.time_fs, e.value] for e in out_probe.events],
        "completed": bool(done_probe.events),
        "checksum": done_probe.values()[0] if done_probe.events else None,
        "end_fs": final.femtoseconds,
        "applied": [fault.as_dict() for fault in injector.applied]
        if injector is not None else [],
    }
    if library.engine is not None:
        payload["fastforward_stats"] = library.engine.stats()
    return payload
