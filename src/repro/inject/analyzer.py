"""Dependability analysis: sweep a faultload through the campaign pool.

One :class:`~repro.batch.config.RunConfig` per injection, all of kind
``"inject"``, cache-keyed by the faultload hash plus the injection's
canonical record — so re-running an analysis resolves from the warm
result cache, and two analyses over the same ``(spec, seed)`` share
every entry.  Each faulted run is classified against the fault-free
golden by its capture-probe observations alone (SBFI style):

``silent``
    The probes saw exactly the golden stream — either the fault never
    activated (its window/ordinal matched nothing) or the design
    masked it.
``detected``
    The run completed but a probe diverged — in value or in simulated
    time.  Detection latency = first divergent probe time minus first
    fault application time.
``failed``
    The run crashed, or the pipeline never delivered all frames
    (killed/stalled processes, dropped events → starvation).

The report splits canonical content from execution statistics the way
``repro.dse`` reports do: everything outside the ``execution`` block
is a pure function of ``(scenario, spec, seed)`` and is byte-stable
across reruns, hosts and worker pools.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from ..batch.cache import ResultCache
from ..batch.campaign import Campaign, RunResult
from ..batch.config import RunConfig
from ..batch.pool import WorkerPool
from ..errors import InjectError
from .faultload import FS_PER_NS, FaultSpec, Faultload, generate_faultload
from .scenario import (
    CHANNEL_ADDRESSES, DEFAULT_FRAMES, DEFAULT_STIM_SEED, DEFAULT_WORKLOAD,
    PROCESS_ADDRESSES,
)
from .vocabulary import MODEL_KINDS

OUTCOME_SILENT = "silent"
OUTCOME_DETECTED = "detected"
OUTCOME_FAILED = "failed"

REPORT_SCHEMA = 1


@dataclasses.dataclass(frozen=True)
class Classification:
    """Verdict for one injected run."""

    index: int
    kind: str
    target: str
    window_fs: List[int]
    outcome: str
    activated: bool
    status: str                     # campaign status: ok | failed | timeout
    cached: bool
    detection_latency_fs: Optional[int] = None
    first_divergence_fs: Optional[int] = None

    def as_canonical_dict(self) -> dict:
        data = {
            "index": self.index,
            "kind": self.kind,
            "target": self.target,
            "window_fs": list(self.window_fs),
            "outcome": self.outcome,
            "activated": self.activated,
            "detection_latency_fs": self.detection_latency_fs,
            "first_divergence_fs": self.first_divergence_fs,
        }
        return data


def _first_divergence(golden: dict, payload: dict) -> Optional[int]:
    """Simulated time (fs) of the first probe observation that differs."""
    gold_events = golden["out_events"]
    run_events = payload["out_events"]
    for gold, run in zip(gold_events, run_events):
        if gold != run:
            return int(run[0])
    if len(run_events) != len(gold_events):
        longer = run_events if len(run_events) > len(gold_events) else gold_events
        return int(longer[min(len(run_events), len(gold_events))][0])
    if payload["checksum"] != golden["checksum"]:
        return int(payload["end_fs"])
    if payload["end_fs"] != golden["end_fs"]:
        return int(payload["end_fs"])
    return None


def classify_run(golden: dict, result: RunResult, injection) -> Classification:
    """Classify one campaign result against the golden payload."""
    base = dict(index=injection.index, kind=injection.kind,
                target=injection.target, window_fs=list(injection.window_fs),
                status=result.status, cached=result.cached)
    payload = result.payload
    if not result.ok or payload is None:
        return Classification(outcome=OUTCOME_FAILED, activated=True, **base)
    activated = bool(payload.get("applied"))
    if not payload.get("completed") or (
            payload["frames_completed"] < golden["frames_completed"]):
        return Classification(outcome=OUTCOME_FAILED, activated=activated,
                              **base)
    divergence = _first_divergence(golden, payload)
    if divergence is None:
        return Classification(outcome=OUTCOME_SILENT, activated=activated,
                              **base)
    latency: Optional[int] = None
    applied_times = [int(fault["time_fs"]) for fault in payload["applied"]]
    if applied_times:
        latency = max(0, divergence - min(applied_times))
    return Classification(outcome=OUTCOME_DETECTED, activated=activated,
                          detection_latency_fs=latency,
                          first_divergence_fs=divergence, **base)


def _latency_stats(latencies_fs: Sequence[int]) -> Optional[dict]:
    if not latencies_fs:
        return None
    ordered = sorted(latencies_fs)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        median = float(ordered[mid])
    else:
        median = (ordered[mid - 1] + ordered[mid]) / 2.0
    return {
        "min_ns": ordered[0] / FS_PER_NS,
        "p50_ns": median / FS_PER_NS,
        "mean_ns": sum(ordered) / len(ordered) / FS_PER_NS,
        "max_ns": ordered[-1] / FS_PER_NS,
        "count": len(ordered),
    }


class DependabilityAnalysis:
    """Generate a faultload, sweep it, classify, and report.

    The fault-model horizon is derived from the golden run: windows are
    placed over ``[0, golden end]`` so every injection has a chance to
    land inside live simulation.  The derivation is deterministic, so
    the resulting spec (and faultload hash, and cache keys) is a pure
    function of ``(scenario parameters, count, kinds, seed)``.
    """

    def __init__(self,
                 count: int,
                 seed: int,
                 workload: str = DEFAULT_WORKLOAD,
                 frames: int = DEFAULT_FRAMES,
                 stim_seed: int = DEFAULT_STIM_SEED,
                 fastforward: bool = True,
                 kinds: Optional[Sequence[str]] = None,
                 window_ns: Optional[int] = None,
                 cache=None,
                 workers: Optional[int] = 0,
                 timeout_s: Optional[float] = None,
                 retries: int = 1,
                 start_method: Optional[str] = None,
                 observers: Sequence = ()):
        self.count = int(count)
        self.seed = int(seed)
        self.workload = workload
        self.frames = int(frames)
        self.stim_seed = int(stim_seed)
        self.fastforward = bool(fastforward)
        self.kinds = tuple(kinds) if kinds else MODEL_KINDS
        self.window_ns = window_ns
        if cache is None or isinstance(cache, ResultCache):
            self.cache = cache
        else:
            self.cache = ResultCache(cache)
        self.workers = workers
        self.timeout_s = timeout_s
        self.retries = retries
        self.start_method = start_method
        self.observers = tuple(observers)
        #: Filled by :meth:`run`.
        self.faultload: Optional[Faultload] = None
        self.golden: Optional[dict] = None

    # -- config construction -----------------------------------------------

    def _scenario_params(self) -> dict:
        return {
            "workload": self.workload,
            "frames": self.frames,
            "stim_seed": self.stim_seed,
            "fastforward": self.fastforward,
        }

    def golden_config(self) -> RunConfig:
        return RunConfig.of("inject", f"{self.workload}-golden",
                            **self._scenario_params())

    def injection_configs(self, faultload: Faultload) -> List[RunConfig]:
        fhash = faultload.hash()
        configs = []
        for injection in faultload.injections:
            configs.append(RunConfig.of(
                "inject",
                f"{self.workload}-f{injection.index:03d}-{injection.kind}",
                faultload=fhash,
                injection=injection.as_dict(),
                **self._scenario_params()))
        return configs

    def _campaign(self, configs: Sequence[RunConfig],
                  pool=None) -> Campaign:
        return Campaign(configs,
                        workers=self.workers,
                        timeout_s=self.timeout_s,
                        retries=self.retries,
                        cache=self.cache,
                        start_method=self.start_method,
                        observers=self.observers,
                        pool=pool)

    def build_spec(self, golden_end_fs: int) -> FaultSpec:
        horizon_ns = max(1, -(-int(golden_end_fs) // FS_PER_NS))
        window_ns = self.window_ns
        if window_ns is None:
            window_ns = max(1, horizon_ns // 4)
        return FaultSpec(count=self.count,
                         kinds=self.kinds,
                         channels=CHANNEL_ADDRESSES,
                         processes=PROCESS_ADDRESSES,
                         horizon_ns=horizon_ns,
                         window_ns=window_ns)

    # -- execution -----------------------------------------------------------

    def run(self) -> dict:
        """Run golden + sweep; return the dependability report dict."""
        # The golden run and every injection share one warm pool, so
        # worker start-up is paid once per analysis, not per campaign.
        pool = (WorkerPool(self.workers, self.start_method)
                if self.workers and self.workers > 1 else None)
        try:
            golden_campaign = self._campaign([self.golden_config()],
                                             pool=pool)
            golden_result = golden_campaign.run()[0]
            if not golden_result.ok or golden_result.payload is None:
                raise InjectError(
                    f"fault-free golden run failed: {golden_result.error or golden_result.status}")
            self.golden = golden_result.payload

            spec = self.build_spec(self.golden["end_fs"])
            self.faultload = generate_faultload(spec, self.seed)
            configs = self.injection_configs(self.faultload)
            campaign = self._campaign(configs, pool=pool)
            results = campaign.run()
        finally:
            if pool is not None:
                pool.shutdown()

        classifications = [
            classify_run(self.golden, result, injection)
            for result, injection in zip(results, self.faultload.injections)]
        return self._report(spec, classifications,
                            golden_campaign.metrics, campaign.metrics)

    # -- report assembly -----------------------------------------------------

    def _report(self, spec: FaultSpec,
                classifications: List[Classification],
                golden_metrics, metrics) -> dict:
        by_outcome = {OUTCOME_SILENT: 0, OUTCOME_DETECTED: 0,
                      OUTCOME_FAILED: 0}
        by_kind: Dict[str, Dict[str, int]] = {}
        latencies: List[int] = []
        activated = 0
        for item in classifications:
            by_outcome[item.outcome] += 1
            bucket = by_kind.setdefault(item.kind, {
                "runs": 0, OUTCOME_SILENT: 0, OUTCOME_DETECTED: 0,
                OUTCOME_FAILED: 0})
            bucket["runs"] += 1
            bucket[item.outcome] += 1
            if item.activated:
                activated += 1
            if item.detection_latency_fs is not None:
                latencies.append(item.detection_latency_fs)

        runs = len(classifications)
        failures = by_outcome[OUTCOME_FAILED]
        golden_end_fs = int(self.golden["end_fs"])
        mttf_ns = None
        if failures:
            # Total operational simulated time across the sweep, per
            # failure — the classic campaign MTTF estimator.
            mttf_ns = runs * golden_end_fs / FS_PER_NS / failures

        return {
            "schema": REPORT_SCHEMA,
            "scenario": self._scenario_params(),
            "seed": self.seed,
            "spec": spec.as_dict(),
            "faultload_hash": self.faultload.hash(),
            "golden": {
                "end_fs": golden_end_fs,
                "checksum": self.golden["checksum"],
                "frames_completed": self.golden["frames_completed"],
                "out_events": self.golden["out_events"],
            },
            "runs": [item.as_canonical_dict() for item in classifications],
            "metrics": {
                "runs": runs,
                "silent": by_outcome[OUTCOME_SILENT],
                "detected": by_outcome[OUTCOME_DETECTED],
                "failed": failures,
                "activated": activated,
                "failure_rate": failures / runs if runs else 0.0,
                "detection_rate":
                    by_outcome[OUTCOME_DETECTED] / runs if runs else 0.0,
                "mttf_ns": mttf_ns,
                "detection_latency_ns": _latency_stats(latencies),
                "by_kind": {kind: by_kind[kind] for kind in sorted(by_kind)},
            },
            "execution": {
                "workers": self.workers,
                "golden": {
                    "cache_hits": golden_metrics.cache_hits,
                    "simulated": len(golden_metrics.run_wall_s),
                },
                "sweep": {
                    "cache_hits": metrics.cache_hits,
                    "simulated": len(metrics.run_wall_s),
                    "retries": metrics.retries,
                    "failed_runs": metrics.failed,
                    "wall_s": metrics.wall_s,
                },
            },
        }
