"""Floating-point biquad IIR filter — exercises the AFloat / FPU path.

Most kernels in this package are integer so they also run on the
reference ISS; floating-point estimation is still part of the library's
surface (the ``f*`` operation costs, FPU functional units in the HLS
substrate).  This kernel runs on two backends — plain floats and
annotated :class:`~repro.annotate.AFloat` — and its segments can be
captured for HW synthesis with FPU allocation.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..annotate.functions import arange
from .common import lcg_stream


def biquad_filter(x, y, n, b0, b1, b2, a1, a2):
    """Direct-form-I biquad: y[i] = b0 x[i] + b1 x[i-1] + b2 x[i-2]
    - a1 y[i-1] - a2 y[i-2].  Returns the output sum."""
    x1 = 0.0
    x2 = 0.0
    y1 = 0.0
    y2 = 0.0
    total = 0.0
    for i in arange(n):
        xi = x[i]
        yi = b0 * xi + b1 * x1 + b2 * x2 - a1 * y1 - a2 * y2
        y[i] = yi
        x2 = x1
        x1 = xi
        y2 = y1
        y1 = yi
        total = total + yi
    return total


def biquad_section(xi, x1, x2, y1, y2, b0, b1, b2, a1, a2):
    """One filter step — the HW segment (pure FPU dataflow)."""
    return b0 * xi + b1 * x1 + b2 * x2 - a1 * y1 - a2 * y2


def lowpass_coefficients(cutoff_hz: float, sample_hz: float,
                         q: float = 0.7071) -> Tuple[float, float, float,
                                                     float, float]:
    """RBJ-cookbook low-pass biquad coefficients (normalized a0 = 1)."""
    if not 0 < cutoff_hz < sample_hz / 2:
        raise ValueError("cutoff must lie below Nyquist")
    omega = 2.0 * math.pi * cutoff_hz / sample_hz
    alpha = math.sin(omega) / (2.0 * q)
    cos_w = math.cos(omega)
    a0 = 1.0 + alpha
    b0 = (1.0 - cos_w) / 2.0 / a0
    b1 = (1.0 - cos_w) / a0
    b2 = (1.0 - cos_w) / 2.0 / a0
    a1 = (-2.0 * cos_w) / a0
    a2 = (1.0 - alpha) / a0
    return b0, b1, b2, a1, a2


def make_biquad_inputs(samples: int = 128, seed: int = 77) -> tuple:
    """(x, y, n, b0, b1, b2, a1, a2) for a 1 kHz low-pass at 8 kHz."""
    x: List[float] = [float(v - 500) for v in lcg_stream(seed, samples, 1000)]
    coefficients = lowpass_coefficients(1000.0, 8000.0)
    return (x, [0.0] * samples, samples, *coefficients)
