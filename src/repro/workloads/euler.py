"""Euler integration — Table 2 (HW) benchmark.

A fixed-point forward-Euler integrator of the harmonic oscillator
``y'' = -y``.  Its dataflow is a long dependence chain (each step needs
the previous state), so critical path ≈ total latency — the opposite
extreme of the FIR dot product.  That contrast is exactly why the paper
evaluates both for HW estimation.
"""

from __future__ import annotations

from ..annotate.functions import arange

DEFAULT_STEPS = 16
#: time step h = 2**-DEFAULT_H_SHIFT (Q-format shift, exact in fixed point)
DEFAULT_H_SHIFT = 4


def euler_oscillator(steps, h_shift):
    """Integrate y'' = -y from (y, v) = (4096, 0); returns final y.

    State in Q12 fixed point; the step multiplication reduces to an
    arithmetic shift, as a HW implementation would do it.
    """
    y = 4096
    v = 0
    for i in arange(steps):
        ay = 0 - y
        y = y + (v >> h_shift)
        v = v + (ay >> h_shift)
    return y


def euler_segment(y0, v0, h_shift):
    """One unrolled 4-step integration — the Table 2 HW segment."""
    y = y0
    v = v0
    ay = 0 - y
    y = y + (v >> h_shift)
    v = v + (ay >> h_shift)
    ay = 0 - y
    y = y + (v >> h_shift)
    v = v + (ay >> h_shift)
    ay = 0 - y
    y = y + (v >> h_shift)
    v = v + (ay >> h_shift)
    ay = 0 - y
    y = y + (v >> h_shift)
    v = v + (ay >> h_shift)
    return y + v


def euler_reference(steps: int, h_shift: int) -> int:
    """Pure-Python reference for the oscillator."""
    y, v = 4096, 0
    for _ in range(steps):
        ay = -y
        y = y + (v >> h_shift)
        v = v + (ay >> h_shift)
    return y
