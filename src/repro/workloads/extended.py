"""Extended benchmark set (beyond the paper's six).

Three further single-source kernels exercising patterns the original
set misses: a separable integer 2-D DCT (triple-nested MAC with a
coefficient table), a bitwise CRC-32 (long xor/shift dependency chains
with data-dependent branching — verifiable against ``binascii``), and a
dense matrix multiply.  Used by ``benchmarks/bench_extended_sw.py`` to
check that calibration generalizes past the workloads it was ever
tuned on.
"""

from __future__ import annotations

import math
from typing import List

from ..annotate.functions import aint, arange
from .common import lcg_stream

DCT_SIZE = 8
#: Q10 fixed-point scale of the cosine table.
DCT_SCALE_SHIFT = 10

CRC32_POLY = 0xEDB88320


def dct_2d(block, cosines, tmp, out, n):
    """Separable 2-D DCT of an ``n x n`` block (flattened arrays).

    ``cosines`` is the Q10 basis matrix from :func:`make_dct_cosines`.
    Returns the coefficient checksum.
    """
    for u in arange(n):
        for x in arange(n):
            acc = 0
            for k in arange(n):
                acc = acc + cosines[u * n + k] * block[k * n + x]
            tmp[u * n + x] = acc >> DCT_SCALE_SHIFT
    for u in arange(n):
        for v in arange(n):
            acc = 0
            for k in arange(n):
                acc = acc + tmp[u * n + k] * cosines[v * n + k]
            out[u * n + v] = acc >> DCT_SCALE_SHIFT
    check = 0
    for i in arange(n * n):
        check = check + out[i]
    return check


def crc32_bitwise(data, n):
    """Reflected CRC-32 (the zlib/binascii polynomial), bit by bit."""
    crc = aint(0xFFFFFFFF)
    for i in arange(n):
        crc = crc ^ (data[i] & 0xFF)
        for b in arange(8):
            if crc & 1:
                crc = (crc >> 1) ^ CRC32_POLY
            else:
                crc = crc >> 1
    return crc ^ 0xFFFFFFFF


def matmul(a, b, c, n):
    """Dense ``n x n`` integer matrix multiply (flattened row-major)."""
    for i in arange(n):
        for j in arange(n):
            acc = 0
            for k in arange(n):
                acc = acc + a[i * n + k] * b[k * n + j]
            c[i * n + j] = acc
    return c[0] + c[n * n - 1]


# --- input builders and references ------------------------------------------

def make_dct_cosines(n: int = DCT_SIZE) -> List[int]:
    """Q10 DCT-II basis matrix, flattened row-major."""
    scale = 1 << DCT_SCALE_SHIFT
    table = []
    for u in range(n):
        alpha = math.sqrt(1.0 / n) if u == 0 else math.sqrt(2.0 / n)
        for x in range(n):
            value = alpha * math.cos((2 * x + 1) * u * math.pi / (2 * n))
            table.append(round(value * scale))
    return table


def make_dct_inputs(seed: int = 11) -> tuple:
    """(block, cosines, tmp, out, n) for an 8x8 DCT."""
    n = DCT_SIZE
    block = [v - 128 for v in lcg_stream(seed, n * n, 256)]
    return block, make_dct_cosines(n), [0] * (n * n), [0] * (n * n), n


def make_crc_inputs(length: int = 512, seed: int = 23) -> tuple:
    return lcg_stream(seed, length, 256), length


def make_matmul_inputs(n: int = 12, seed: int = 31) -> tuple:
    a = [v - 50 for v in lcg_stream(seed, n * n, 100)]
    b = [v - 50 for v in lcg_stream(seed + 1, n * n, 100)]
    return a, b, [0] * (n * n), n


def dct_reference(block: List[int], n: int = DCT_SIZE) -> List[int]:
    """Float DCT-II for sanity checks (Q10 quantization tolerated)."""
    out = []
    for u in range(n):
        for v in range(n):
            alpha_u = math.sqrt(1.0 / n) if u == 0 else math.sqrt(2.0 / n)
            alpha_v = math.sqrt(1.0 / n) if v == 0 else math.sqrt(2.0 / n)
            total = 0.0
            for x in range(n):
                for y in range(n):
                    total += (block[x * n + y]
                              * math.cos((2 * x + 1) * u * math.pi / (2 * n))
                              * math.cos((2 * y + 1) * v * math.pi / (2 * n)))
            out.append(alpha_u * alpha_v * total)
    return out
