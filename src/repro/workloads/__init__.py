"""The paper's benchmark workloads, written single-source.

Every kernel here runs on three backends unchanged: plain Python
(functional model), annotated types (estimation), and compiled onto the
OR-lite ISS (reference measurements).
"""

from .array_ops import array_ops, make_array_inputs
from .biquad import (
    biquad_filter,
    biquad_section,
    lowpass_coefficients,
    make_biquad_inputs,
)
from .common import lcg_stream, run_annotated, wrap_args
from .compressor import compress, decompress, make_compress_inputs
from .euler import euler_oscillator, euler_reference, euler_segment
from .extended import (
    crc32_bitwise,
    dct_2d,
    dct_reference,
    make_crc_inputs,
    make_dct_inputs,
    make_matmul_inputs,
    matmul,
)
from .fibonacci import fib_benchmark, fib_iterative, fib_recursive
from .fir import fir_filter, fir_reference, fir_sample, make_fir_inputs
from .sorting import (
    bubble_sort,
    make_sort_inputs,
    quick_partition,
    quick_sort,
    quick_sort_checked,
)


def registry():
    """name -> (functions tuple (entry first), argument builder).

    The canonical benchmark inventory shared by the CLI, the batch
    subsystem and the differential tests: every entry runs single-source
    on all three backends (plain, annotated, ISS-compiled).
    """
    return {
        "fir": ((fir_filter,), lambda: make_fir_inputs(256, 16)),
        "compress": ((compress,), lambda: make_compress_inputs(1024)),
        "quicksort": ((quick_sort_checked, quick_sort, quick_partition),
                      lambda: (make_sort_inputs(256)[0], 256)),
        "bubble": ((bubble_sort,), lambda: make_sort_inputs(96, seed=3)),
        "fibonacci": ((fib_benchmark, fib_recursive, fib_iterative),
                      lambda: (17,)),
        "array": ((array_ops,), lambda: make_array_inputs(512)),
        "euler": ((euler_oscillator,), lambda: (64, 4)),
        "dct": ((dct_2d,), make_dct_inputs),
        "crc32": ((crc32_bitwise,), lambda: make_crc_inputs(512)),
        "matmul": ((matmul,), lambda: make_matmul_inputs(12)),
    }


#: Extra kernel entry-point names announced via
#: :func:`register_kernel_entry_point` (out-of-tree workloads).
_EXTRA_ENTRY_POINTS: set = set()


def register_kernel_entry_point(name: str) -> str:
    """Announce ``name`` as an annotated-kernel entry point.

    The model linter treats any function with this name as a kernel
    even when its body carries no annotation markers (``aint``,
    ``arange``, ...) — the case for kernels that take already-wrapped
    arguments and never construct annotated values themselves.
    Returns the name so it can be used as a decorator-ish one-liner::

        register_kernel_entry_point("my_kernel")
    """
    _EXTRA_ENTRY_POINTS.add(str(name))
    return name


def entry_point_names() -> list:
    """Every known kernel entry-point function name, sorted.

    The union of the benchmark :func:`registry` (all functions of every
    entry, since helpers like ``quick_partition`` are kernels too) and
    the names announced via :func:`register_kernel_entry_point`.  The
    linter's kernel detection consults this, so native-typed registry
    kernels are linted even though their bodies carry no markers.
    """
    names = set(_EXTRA_ENTRY_POINTS)
    for functions, _make_args in registry().values():
        for fn in functions:
            names.add(fn.__name__)
    return sorted(names)


__all__ = [
    "registry",
    "entry_point_names", "register_kernel_entry_point",
    "array_ops", "make_array_inputs",
    "biquad_filter", "biquad_section", "lowpass_coefficients",
    "make_biquad_inputs",
    "lcg_stream", "run_annotated", "wrap_args",
    "compress", "decompress", "make_compress_inputs",
    "euler_oscillator", "euler_reference", "euler_segment",
    "crc32_bitwise", "dct_2d", "dct_reference", "make_crc_inputs",
    "make_dct_inputs", "make_matmul_inputs", "matmul",
    "fib_benchmark", "fib_iterative", "fib_recursive",
    "fir_filter", "fir_reference", "fir_sample", "make_fir_inputs",
    "bubble_sort", "make_sort_inputs", "quick_partition", "quick_sort",
    "quick_sort_checked",
]
