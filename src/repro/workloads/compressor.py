"""Compress — Table 1 benchmark.

A byte-oriented run-length encoder with a small move-to-front stage,
chosen to stress data-dependent control flow (the estimation case the
paper says static techniques struggle with) while staying inside the
single-source subset.
"""

from __future__ import annotations

from typing import List

from ..annotate.functions import aint, arange
from .common import lcg_stream

DEFAULT_LENGTH = 1024


def compress(src, dst, mtf, n):
    """Move-to-front + run-length encode ``src[0:n]`` into ``dst``.

    ``mtf`` is a 256-entry scratch table (initialized by the callee).
    Returns the number of words written to ``dst`` (``dst`` must hold at
    least ``2 * n`` words).
    """
    for s in arange(256):
        mtf[s] = s
    out = aint(0)
    i = aint(0)
    while i < n:
        value = src[i]
        # move-to-front transform: find the symbol's current rank
        rank = aint(0)
        while mtf[rank] != value:
            rank = rank + 1
        j = rank
        while j > 0:
            mtf[j] = mtf[j - 1]
            j = j - 1
        mtf[0] = value
        # run length of identical source symbols
        run = aint(1)
        nxt = i + run
        while nxt < n and run < 255:
            if src[nxt] != value:
                break
            run = run + 1
            nxt = i + run
        dst[out] = run
        dst[out + 1] = rank
        out = out + 2
        i = i + run
    return out


def decompress(dst, out, mtf, pairs):
    """Invert :func:`compress`: expand ``pairs`` (run, rank) words.

    Returns the number of symbols produced into ``out``.
    """
    for s in arange(256):
        mtf[s] = s
    produced = aint(0)
    for p in arange(pairs):
        run = dst[2 * p]
        rank = dst[2 * p + 1]
        value = mtf[rank]
        j = rank
        while j > 0:
            mtf[j] = mtf[j - 1]
            j = j - 1
        mtf[0] = value
        for r in arange(run):
            out[produced] = value
            produced = produced + 1
    return produced


def make_compress_inputs(length: int = DEFAULT_LENGTH, seed: int = 7) -> tuple:
    """(src, dst, mtf, n) with runs and a skewed symbol distribution."""
    raw = lcg_stream(seed, length, 1 << 16)
    src: List[int] = []
    for value in raw:
        symbol = (value % 16) * (value % 3 == 0) + (value % 4)
        run = 1 + value % 5
        src.extend([symbol] * run)
        if len(src) >= length:
            break
    src = src[:length]
    return src, [0] * (2 * length), [0] * 256, length
