"""Array — Table 1 benchmark.

Element-wise vector arithmetic with reductions: the memory-bandwidth
stressor of the set (loads/stores dominate).
"""

from __future__ import annotations

from ..annotate.functions import arange
from .common import lcg_stream

DEFAULT_LENGTH = 512


def array_ops(a, b, c, n):
    """c = 3a + b; then return max(c) + dot(a, b) mod a running scale."""
    for i in arange(n):
        c[i] = a[i] * 3 + b[i]
    peak = c[0]
    for i in arange(1, n):
        if c[i] > peak:
            peak = c[i]
    dot = 0
    for i in arange(n):
        dot = dot + a[i] * b[i]
    return peak + (dot & 1048575)


def make_array_inputs(length: int = DEFAULT_LENGTH, seed: int = 99) -> tuple:
    """(a, b, c, n) vectors for :func:`array_ops`."""
    a = lcg_stream(seed, length, 2_000)
    b = lcg_stream(seed + 1, length, 2_000)
    return a, b, [0] * length, length
