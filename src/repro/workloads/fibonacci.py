"""Fibonacci — Table 1 benchmark.

The recursive variant stresses call overhead (the ``t_fc`` weight of the
paper's Fig. 3); the iterative variant is used for quick checks.
"""

from __future__ import annotations

from ..annotate.functions import annotated_function, arange

DEFAULT_N = 17


@annotated_function
def fib_recursive(n):
    """Naive exponential recursion — a pure call-overhead stressor."""
    if n < 2:
        return n
    return fib_recursive(n - 1) + fib_recursive(n - 2)


def fib_iterative(n):
    a = 0
    b = 1
    for i in arange(n):
        t = a + b
        a = b
        b = t
    return a


def fib_benchmark(n):
    """The Table 1 entry: recursive Fibonacci cross-checked iteratively."""
    r = fib_recursive(n)
    s = fib_iterative(n)
    if r != s:
        return 0 - 1
    return r
