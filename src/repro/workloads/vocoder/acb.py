"""Adaptive-codebook search — the third vocoder process (Table 3,
"ACB sear.").

Open-loop pitch search: for each subframe, find the lag whose shifted
excitation history best correlates with the target, scoring with the
normalized squared correlation corr²/energy (the CELP criterion).
The lag loop over ~60 candidates × 40-sample correlations makes this
the heaviest stage — as in the real vocoder.
"""

from __future__ import annotations

from ...annotate.functions import aint, arange

MIN_LAG = 20
MAX_LAG = 80
SUBFRAME = 40


def acb_search(exc_hist, target, n, min_lag, max_lag):
    """Best pitch lag for ``target`` given ``exc_hist``.

    ``exc_hist`` holds ``max_lag + n`` samples, oldest first; candidate
    lag L reads ``exc_hist[max_lag - L + i]``.  Returns the winning lag.
    """
    best_lag = min_lag
    best_score = aint(0 - (1 << 50))
    for lag in arange(min_lag, max_lag + 1):
        corr = aint(0)
        energy = aint(1)
        base = max_lag - lag
        for i in arange(n):
            sample = exc_hist[base + i]
            corr = corr + target[i] * sample
            energy = energy + sample * sample
        score = (corr * corr) // energy
        if score > best_score:
            best_score = score
            best_lag = lag
    return best_lag
