"""The concurrent vocoder: stages, executors, and the SystemC-style design.

The paper splits the sequential EN vocoder into 5 concurrent processes
(LSP estimation, LPC interpolation, ACB search, ICB search,
post-processing) connected in a pipeline.  This module provides:

* **stage objects** — per-stage argument/state management, shared by
  every backend so the concurrent simulation, the plain functional run
  and the ISS reference all compute on *identical* data;
* **executors** — how a stage invokes its kernel: in-process plain,
  in-process annotated (AArray-wrapped, charging the active context),
  or compiled-on-the-ISS (used by the Table 3 reference);
* :func:`build_vocoder` — the five-process kernel design plus frame
  source and sink, ready for :class:`~repro.core.PerformanceLibrary`.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence

from ...annotate.types import AArray, ABool, AInt, unwrap
from ...compilebc.tier import current_tier
from ...kernel.simulator import Simulator
from ...kernel.module import Module
from .acb import MAX_LAG, MIN_LAG, SUBFRAME, acb_search
from .icb import TRACKS, icb_search
from .lpc import SUBFRAMES, lpc_interpolate
from .lsp import ORDER, Q_ONE, autocorrelation, levinson_durbin, lsp_estimate
from .postproc import postprocess

#: Ordered stage names as they appear in Table 3.
STAGE_NAMES = ("lsp_estim", "lpc_int", "acb_search", "icb_search", "post_proc")


# ---------------------------------------------------------------------------
# Executors
# ---------------------------------------------------------------------------

def plain_executor(fn: Callable, args: Sequence) -> int:
    """Run a kernel directly on plain Python values."""
    return int(fn(*args))


def _interpreted_executor(fn: Callable, args: Sequence) -> int:
    """The interpreted annotated run: wrap, execute, write back."""
    wrapped = []
    writebacks = []
    for arg in args:
        if isinstance(arg, list):
            array = AArray(arg)
            wrapped.append(array)
            writebacks.append((arg, array))
        elif isinstance(arg, bool):
            # bool before int (subclass): predicate parameters charge a
            # branch on truth test, matching the compiled SH_BOOL shape.
            wrapped.append(ABool(arg))
        else:
            wrapped.append(AInt(int(arg)))
    result = fn(*wrapped)
    for original, array in writebacks:
        original[:] = array.to_list()
    return int(unwrap(result))


def annotated_executor(fn: Callable, args: Sequence) -> int:
    """Run a kernel on annotated copies, writing array mutations back.

    Charging happens through whatever cost context is active (the one
    the performance library installed for the calling process); without
    an active context this degrades to a slightly slower plain run.

    When a compile tier is installed (``PerformanceLibrary``'s
    ``compile=True``), the call is routed through the kernel's compiled
    program instead — same results, same write-backs, same charged
    totals — falling back to the interpreted run above for anything the
    compiler rejected or a context the folded charges cannot serve.
    """
    tier = current_tier()
    if tier is not None:
        handled, result = tier.run_kernel(fn, args, _interpreted_executor)
        if handled:
            return result
    return _interpreted_executor(fn, args)


# The executor is transparent by construction: it returns a plain int
# and writes plain lists back, whatever the kernel does internally.
# The effects analyzer keys on this marker to classify a stage's
# execute(...) call by its kernel's charge verdict alone.
annotated_executor.__repro_effects__ = {"kind": "executor"}


# ---------------------------------------------------------------------------
# Stages
# ---------------------------------------------------------------------------

class Stage:
    """Base: a named kernel stage transforming a payload dict.

    ``run(execute, payload)`` mutates/extends the payload and returns
    it; ``execute`` is one of the executors above (or an ISS-backed
    one).  Keeping state inside the stage object means the concurrent
    pipeline and the sequential reference share semantics exactly.
    """

    name: str = "stage"
    #: kernels this stage calls (what the ISS reference must compile)
    kernels: tuple = ()

    def run(self, execute: Callable, payload: Dict) -> Dict:
        raise NotImplementedError


class LspStage(Stage):
    name = "lsp_estim"
    kernels = (lsp_estimate, autocorrelation, levinson_durbin)

    def __init__(self, order: int = ORDER):
        self.order = order

    def run(self, execute, payload):
        frame = payload["frame"]
        r = [0] * (self.order + 1)
        a = [0] * (self.order + 1)
        tmp = [0] * (self.order + 1)
        execute(lsp_estimate, (frame, r, a, tmp, len(frame), self.order))
        payload["lpc"] = a
        return payload


class LpcStage(Stage):
    name = "lpc_int"
    kernels = (lpc_interpolate,)

    def __init__(self, order: int = ORDER, subframes: int = SUBFRAMES):
        self.order = order
        self.subframes = subframes
        self.previous = [Q_ONE] + [0] * order

    def run(self, execute, payload):
        a_new = payload["lpc"]
        a_sub = [0] * (self.subframes * (self.order + 1))
        execute(lpc_interpolate,
                (self.previous, a_new, a_sub, self.order, self.subframes))
        self.previous = list(a_new)
        payload["lpc_sub"] = a_sub
        return payload


class AcbStage(Stage):
    name = "acb_search"
    kernels = (acb_search,)

    def __init__(self, subframe: int = SUBFRAME,
                 min_lag: int = MIN_LAG, max_lag: int = MAX_LAG):
        self.subframe = subframe
        self.min_lag = min_lag
        self.max_lag = max_lag
        self.history = [0] * max_lag

    def run(self, execute, payload):
        frame = payload["frame"]
        lags = []
        for start in range(0, len(frame), self.subframe):
            target = frame[start:start + self.subframe]
            exc_hist = self.history[-self.max_lag:] + target
            lag = execute(acb_search, (exc_hist, target, len(target),
                                       self.min_lag, self.max_lag))
            lags.append(lag)
            self.history = (self.history + target)[-self.max_lag:]
        payload["lags"] = lags
        return payload


class IcbStage(Stage):
    name = "icb_search"
    kernels = (icb_search,)

    def __init__(self, subframe: int = SUBFRAME, tracks: int = TRACKS):
        self.subframe = subframe
        self.tracks = tracks

    def run(self, execute, payload):
        frame = payload["frame"]
        pulse_sets = []
        for start in range(0, len(frame), self.subframe):
            target = frame[start:start + self.subframe]
            pulses = [0] * self.tracks
            execute(icb_search, (target, pulses, len(target), self.tracks))
            pulse_sets.append(pulses)
        payload["pulses"] = pulse_sets
        return payload


class PostStage(Stage):
    name = "post_proc"
    kernels = (postprocess,)

    def __init__(self):
        self.state = [0, 0]

    def run(self, execute, payload):
        frame = payload["frame"]
        output = [0] * len(frame)
        check = execute(postprocess, (frame, output, len(frame), self.state))
        payload["output"] = output
        payload["check"] = check
        return payload


def make_stages() -> List[Stage]:
    """Fresh stage objects in pipeline order."""
    return [LspStage(), LpcStage(), AcbStage(), IcbStage(), PostStage()]


# ---------------------------------------------------------------------------
# Sequential reference (shared state semantics with the pipeline)
# ---------------------------------------------------------------------------

def run_reference(frames: Sequence[List[int]],
                  execute: Callable = plain_executor,
                  stages: Optional[List[Stage]] = None) -> List[Dict]:
    """Run the whole vocoder sequentially; returns final payloads.

    With the default plain executor this is the functional golden model;
    with an ISS-backed executor it is the Table 3 cycle reference.
    """
    if stages is None:
        stages = make_stages()
    results = []
    for frame in frames:
        payload: Dict = {"frame": list(frame)}
        for stage in stages:
            payload = stage.run(execute, payload)
        results.append(payload)
    return results


# ---------------------------------------------------------------------------
# The concurrent design
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class VocoderDesign:
    """Handles of a built concurrent vocoder."""

    simulator: Simulator
    module: Module
    processes: Dict[str, object]       # stage name -> kernel Process
    results: List[Dict]                # collected sink payloads
    stages: Dict[str, Stage]


def build_vocoder(simulator: Simulator, frames: Sequence[List[int]],
                  annotate: bool = True,
                  fifo_capacity: int = 2) -> VocoderDesign:
    """Instantiate the five-process pipeline plus source and sink.

    ``annotate=True`` makes each stage execute its kernel on annotated
    values (required for the performance library); ``annotate=False``
    gives the plain untimed specification the paper's overload factor
    compares against.
    """
    execute = annotated_executor if annotate else plain_executor
    stage_objects = make_stages()
    module = Module(simulator, "vocoder")

    links = [simulator.fifo(f"link{i}", capacity=fifo_capacity)
             for i in range(len(stage_objects) + 1)]
    results: List[Dict] = []

    def source():
        for frame in frames:
            yield from links[0].write({"frame": list(frame)})

    def make_stage_process(stage: Stage, inlet, outlet):
        def body():
            for _ in range(len(frames)):
                payload = yield from inlet.read()
                payload = stage.run(execute, payload)
                yield from outlet.write(payload)
        body.__name__ = stage.name
        return body

    def sink():
        for _ in range(len(frames)):
            payload = yield from links[-1].read()
            results.append(payload)

    processes: Dict[str, object] = {}
    processes["source"] = module.add_process(source)
    for index, stage in enumerate(stage_objects):
        body = make_stage_process(stage, links[index], links[index + 1])
        processes[stage.name] = module.add_process(body, name=stage.name)
    processes["sink"] = module.add_process(sink)

    return VocoderDesign(
        simulator=simulator,
        module=module,
        processes=processes,
        results=results,
        stages={stage.name: stage for stage in stage_objects},
    )
