"""Synthetic speech-like frame generator for the vocoder workload.

The ETSI test vectors are not redistributable; a pitched integer
waveform (triangle carrier at a drifting pitch period plus LCG noise)
exercises the same code paths: non-trivial autocorrelation peaks for
the pitch search, spectral tilt for the LPC recursion, DC offset for
the post-processing high-pass.
"""

from __future__ import annotations

from typing import List

from ..common import lcg_stream

FRAME = 160


def _triangle(phase: int, period: int, amplitude: int) -> int:
    half = period // 2
    position = phase % period
    if position < half:
        return (2 * amplitude * position) // half - amplitude
    return amplitude - (2 * amplitude * (position - half)) // half


def make_frames(count: int, frame_length: int = FRAME,
                seed: int = 160) -> List[List[int]]:
    """``count`` frames of pitched 13-bit samples with noise and DC."""
    noise = lcg_stream(seed, count * frame_length, 512)
    frames: List[List[int]] = []
    sample_index = 0
    for frame_number in range(count):
        period = 36 + (frame_number * 7) % 40     # drifting pitch
        amplitude = 2500 + (frame_number * 331) % 1200
        frame = []
        for i in range(frame_length):
            value = _triangle(sample_index, period, amplitude)
            value += noise[sample_index] - 256    # zero-mean noise
            value += 64                           # small DC offset
            frame.append(value)
            sample_index += 1
        frames.append(frame)
    return frames
