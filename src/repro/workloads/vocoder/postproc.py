"""Post-processing — the fifth vocoder process (Table 3 "Post Proc."
and the HW-mapped function of Table 4).

A first-order high-pass (DC removal) with de-emphasis feedback and
16-bit saturation, carrying filter state across frames.
"""

from __future__ import annotations

from ...annotate.functions import arange

SAT_MAX = 32767
SAT_MIN = -32768


def postprocess(x, y, n, state):
    """Filter ``x[0:n]`` into ``y``; ``state = [prev_x, prev_y]`` persists
    across calls.  Returns the output checksum."""
    px = state[0]
    py = state[1]
    for i in arange(n):
        v = x[i]
        hp = v - px + ((py * 15) >> 4)
        px = v
        py = hp
        if hp > 32767:
            hp = 32767
        if hp < 0 - 32768:
            hp = 0 - 32768
        y[i] = hp
    state[0] = px
    state[1] = py
    check = 0
    for i in arange(n):
        check = check + y[i]
    return check
