"""LSP estimation — the first vocoder process (Table 3, "LSP estim.").

Autocorrelation + integer Levinson-Durbin recursion in Q12 fixed point.
(The ETSI EN vocoder converts the LPC polynomial to line spectral pairs;
for the performance workload the autocorrelation + recursion dominate,
and they are what we reproduce — see DESIGN.md substitution notes.)
"""

from __future__ import annotations

from ...annotate.functions import annotated_function, arange

ORDER = 10
FRAME = 160
Q_ONE = 4096          # 1.0 in Q12
K_CLAMP = 3900        # keep reflection coefficients < 0.952 for stability


@annotated_function
def autocorrelation(x, r, n, order):
    """r[k] = (sum_i x[i] * x[i+k]) >> 6 for k in [0, order]."""
    for k in arange(order + 1):
        acc = 0
        for i in arange(n - k):
            acc = acc + x[i] * x[i + k]
        r[k] = acc >> 6
    return r[0]


@annotated_function
def levinson_durbin(r, a, tmp, order):
    """Solve the normal equations; a[1..order] in Q12, a[0] = 4096.

    Returns the first coefficient (a cheap cross-backend checksum).
    Integer-only: the divide uses floor semantics identically on every
    backend, and the prediction error is floored at 1 to keep the
    recursion well-defined for degenerate frames.
    """
    a[0] = Q_ONE
    for i in arange(1, order + 1):
        a[i] = 0
    err = r[0] + 1
    for m in arange(1, order + 1):
        acc = r[m] << 12
        for j in arange(1, m):
            acc = acc - a[j] * r[m - j]
        k = acc // err
        if k > K_CLAMP:
            k = K_CLAMP
        if k < 0 - K_CLAMP:
            k = 0 - K_CLAMP
        for j in arange(1, m):
            tmp[j] = a[j] - ((k * a[m - j]) >> 12)
        for j in arange(1, m):
            a[j] = tmp[j]
        a[m] = k
        err = (err * (Q_ONE - ((k * k) >> 12))) >> 12
        if err < 1:
            err = 1
    return a[1]


def lsp_estimate(x, r, a, tmp, n, order):
    """The full LSP-estimation stage: autocorrelation then recursion."""
    autocorrelation(x, r, n, order)
    return levinson_durbin(r, a, tmp, order)
