"""The EN-vocoder-style concurrent workload (Tables 3 and 4)."""

from .acb import MAX_LAG, MIN_LAG, SUBFRAME, acb_search
from .frames import FRAME, make_frames
from .icb import TRACKS, icb_search
from .lpc import SUBFRAMES, lpc_interpolate
from .lsp import ORDER, autocorrelation, levinson_durbin, lsp_estimate
from .pipeline import (
    STAGE_NAMES,
    Stage,
    VocoderDesign,
    annotated_executor,
    build_vocoder,
    make_stages,
    plain_executor,
    run_reference,
)
from .postproc import postprocess

__all__ = [
    "MAX_LAG", "MIN_LAG", "SUBFRAME", "acb_search",
    "FRAME", "make_frames",
    "TRACKS", "icb_search",
    "SUBFRAMES", "lpc_interpolate",
    "ORDER", "autocorrelation", "levinson_durbin", "lsp_estimate",
    "STAGE_NAMES", "Stage", "VocoderDesign", "annotated_executor",
    "build_vocoder", "make_stages", "plain_executor", "run_reference",
    "postprocess",
]
