"""Innovative-codebook search — the fourth vocoder process (Table 3,
"ICB sear.").

Algebraic (ACELP-style) codebook: one pulse per interleaved track,
chosen greedily at the position of maximum absolute target amplitude.
"""

from __future__ import annotations

from ...annotate.functions import aint, arange

TRACKS = 4


def icb_search(target, pulses, n, tracks):
    """Pick one pulse position per track; returns the summed peak
    amplitudes (the stage checksum)."""
    total = aint(0)
    for t in arange(tracks):
        best_pos = t
        best_val = aint(0 - 1)
        pos = t
        while pos < n:
            v = target[pos]
            if v < 0:
                v = 0 - v
            if v > best_val:
                best_val = v
                best_pos = pos
            pos = pos + tracks
        pulses[t] = best_pos
        total = total + best_val
    return total
