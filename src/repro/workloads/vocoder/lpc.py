"""LPC interpolation — the second vocoder process (Table 3, "LPC int.").

Interpolates between the previous frame's LPC set and the current one,
producing one coefficient set per subframe (standard CELP practice to
smooth spectral evolution).
"""

from __future__ import annotations

from ...annotate.functions import arange

SUBFRAMES = 4
Q_ONE = 4096


def lpc_interpolate(a_prev, a_new, a_sub, order, subframes):
    """Fill ``a_sub`` (flattened ``subframes x (order+1)``) and return a
    checksum of the first reflection column."""
    for s in arange(subframes):
        w = ((s + 1) << 12) // subframes
        for j in arange(order + 1):
            a_sub[s * (order + 1) + j] = (
                a_prev[j] * (Q_ONE - w) + a_new[j] * w
            ) >> 12
    check = 0
    for s in arange(subframes):
        check = check + a_sub[s * (order + 1) + 1]
    return check
