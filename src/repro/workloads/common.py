"""Shared workload utilities: deterministic inputs and backend helpers.

Benchmark inputs come from a little LCG rather than :mod:`random` so
that every backend (plain, annotated, compiled) and every run sees the
same data — cycle counts must be comparable across reports.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from ..annotate.context import CostContext, MODE_SW, active
from ..annotate.costs import OperationCosts
from ..annotate.types import AArray, ABool, AFloat, AInt, unwrap

_LCG_MULT = 6364136223846793005
_LCG_INC = 1442695040888963407
_LCG_MASK = (1 << 64) - 1


def lcg_stream(seed: int, count: int, bound: int) -> List[int]:
    """``count`` deterministic pseudo-random ints in ``[0, bound)``."""
    if bound <= 0:
        raise ValueError("bound must be positive")
    state = seed & _LCG_MASK
    values = []
    for _ in range(count):
        state = (state * _LCG_MULT + _LCG_INC) & _LCG_MASK
        values.append((state >> 33) % bound)
    return values


def wrap_args(args: Sequence) -> tuple:
    """Deep-copy ``args`` into annotated types.

    Lists become :class:`AArray`, bools :class:`ABool` (checked before
    ``int``, its superclass — truth-testing the wrapped value charges a
    branch), ints :class:`AInt`, floats :class:`AFloat`.
    """
    wrapped = []
    for arg in args:
        if isinstance(arg, list):
            wrapped.append(AArray(arg))
        elif isinstance(arg, bool):
            wrapped.append(ABool(arg))
        elif isinstance(arg, int):
            wrapped.append(AInt(arg))
        elif isinstance(arg, float):
            wrapped.append(AFloat(arg))
        else:
            raise TypeError(f"cannot wrap {type(arg).__name__}")
    return tuple(wrapped)


def run_annotated(fn: Callable, args: Sequence,
                  costs: OperationCosts,
                  mode: str = MODE_SW) -> Tuple[object, float, float]:
    """Run ``fn`` under a fresh cost context on wrapped copies of ``args``.

    Returns ``(result, t_max_cycles, t_min_cycles)``; the result is the
    unwrapped plain value (int or float, matching the plain backend).
    """
    context = CostContext(costs, mode)
    wrapped = wrap_args(args)
    with active(context):
        result = fn(*wrapped)
    t_max, t_min = context.segment_totals()
    return unwrap(result), t_max, t_min
