"""FIR filter — Table 1 (SW) and Table 2 (HW segment) benchmark.

Fixed-point (Q8 coefficients) finite-impulse-response filter written in
the single-source subset: the same body runs plain, annotated and
compiled.
"""

from __future__ import annotations

from typing import List

from ..annotate.functions import arange
from .common import lcg_stream

#: Default experiment geometry (Table 1 row "FIR").
DEFAULT_TAPS = 16
DEFAULT_SAMPLES = 256


def fir_filter(x, h, y, n, taps):
    """y[i] = (sum_k h[k] * x[i+k]) >> 8 for i in [0, n).

    ``x`` must hold ``n + taps`` samples.  Returns a checksum of the
    output (for cross-backend verification).
    """
    check = 0
    for i in arange(n):
        acc = 0
        for k in arange(taps):
            acc = acc + h[k] * x[i + k]
        y[i] = acc >> 8
        check = check + y[i]
    return check


def fir_sample(x, h, taps):
    """One output sample — the Table 2 HW segment (a dot product)."""
    acc = 0
    for k in arange(taps):
        acc = acc + h[k] * x[k]
    return acc >> 8


def make_fir_inputs(samples: int = DEFAULT_SAMPLES,
                    taps: int = DEFAULT_TAPS,
                    seed: int = 2004) -> tuple:
    """(x, h, y, n, taps) arguments for :func:`fir_filter`."""
    x = [v - 512 for v in lcg_stream(seed, samples + taps, 1024)]
    h = _lowpass_taps(taps)
    y = [0] * samples
    return x, h, y, samples, taps


def _lowpass_taps(taps: int) -> List[int]:
    """A symmetric triangular low-pass response in Q8."""
    half = (taps + 1) // 2
    rising = [int(256 * (i + 1) / half) for i in range(half)]
    return (rising + rising[::-1])[:taps]


def fir_reference(x: List[int], h: List[int], n: int, taps: int) -> List[int]:
    """Pure-Python reference used by the tests."""
    return [sum(h[k] * x[i + k] for k in range(taps)) >> 8 for i in range(n)]
