"""Quick sort and Bubble sort — Table 1 benchmarks.

Quick sort exercises recursion and data-dependent branching; bubble
sort is the regular-control-flow contrast.  Both sort in place and
return a checksum so all three backends can be cross-checked.
"""

from __future__ import annotations

from ..annotate.functions import aint, annotated_function, arange
from .common import lcg_stream

DEFAULT_QUICK_LENGTH = 256
DEFAULT_BUBBLE_LENGTH = 96


@annotated_function
def quick_partition(a, lo, hi):
    """Lomuto partition around ``a[hi]``; returns the pivot index."""
    pivot = a[hi]
    i = lo - 1
    for j in arange(lo, hi):
        if a[j] <= pivot:
            i = i + 1
            t = a[i]
            a[i] = a[j]
            a[j] = t
    t = a[i + 1]
    a[i + 1] = a[hi]
    a[hi] = t
    return i + 1


@annotated_function
def quick_sort(a, lo, hi):
    """Recursive quicksort of ``a[lo:hi+1]`` (inclusive bounds)."""
    if lo < hi:
        p = quick_partition(a, lo, hi)
        quick_sort(a, lo, p - 1)
        quick_sort(a, p + 1, hi)
    return 0


def quick_sort_checked(a, n):
    """Sort and return a position-weighted checksum."""
    quick_sort(a, 0, n - 1)
    check = 0
    for i in arange(n):
        check = check + a[i] * (i + 1)
    return check


def bubble_sort(a, n):
    """Classic early-exit bubble sort; returns the same checksum."""
    i = aint(0)
    swapped = aint(1)
    while swapped == 1 and i < n:
        swapped = aint(0)
        for j in arange(n - 1 - i):
            if a[j] > a[j + 1]:
                t = a[j]
                a[j] = a[j + 1]
                a[j + 1] = t
                swapped = aint(1)
        i = i + 1
    check = 0
    for i in arange(n):
        check = check + a[i] * (i + 1)
    return check


def make_sort_inputs(length: int, seed: int = 42) -> tuple:
    """(a, n) with values in [0, 10000)."""
    return lcg_stream(seed, length, 10_000), length
