"""``repro.compilebc`` — the AST→bytecode kernel compile tier.

Compiles annotated kernels to plain CPython bytecode with the cost
charging folded out of the data path: native ints and lists replace the
``aint``/``make_array`` wrappers, and each basic block's operation
multiset is pre-summed into a single ``charge_block`` call at block
entry, with flag-gated per-operation charges (the dynamic fallback)
only where the charge is data-dependent.  Opt in through
``PerformanceLibrary(compile=True)`` or ``repro bench --compile``;
``check_compile`` asserts cycle-identical totals against the dynamic
charging per kernel call.  See ``docs/internals.md``.
"""

from .check import check_entry, check_registry, run_compiled, run_interpreted
from .model import Unsupported
from .program import CompiledProgram, arg_shapes_of, compile_kernel
from .tier import CompileCheckError, CompileTier, current_tier, set_tier

__all__ = [
    "CompileCheckError", "CompileTier", "CompiledProgram", "Unsupported",
    "arg_shapes_of", "check_entry", "check_registry", "compile_kernel",
    "current_tier", "run_compiled", "run_interpreted", "set_tier",
]
