"""Standalone ``check_compile`` differential over function workloads.

The executor-level differential (vocoder kernels) lives in
:mod:`.tier`; this module covers the registry's plain function
workloads for ``repro bench --check-compile`` and the test suite: each
entry kernel is run interpreted (annotated types, dynamic charging) and
compiled (folded block charges) on identical inputs, and the results,
final array contents, charged cycle totals and full per-operation count
vectors must agree exactly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..annotate.context import MODE_SW, CostContext, active
from ..annotate.costs import OperationCosts
from .model import SH_ARR, Unsupported
from .program import Charger, CompiledProgram, arg_shapes_of, compile_kernel
from .tier import CompileCheckError


def run_interpreted(entry, args, costs: OperationCosts):
    """Annotated interpreted run; returns (result, cycles, counts, arrays)."""
    from ..annotate.types import AArray, unwrap
    from ..workloads.common import wrap_args

    ctx = CostContext(costs, MODE_SW)
    wrapped = wrap_args(args)
    with active(ctx):
        result = entry(*wrapped)
    arrays = [value.to_list() for value in wrapped
              if isinstance(value, AArray)]
    return unwrap(result), ctx.total_cycles, list(ctx._counts), arrays


def run_compiled(program: CompiledProgram, args, costs: OperationCosts):
    """Compiled run on fresh state; returns the same tuple shape."""
    table = program.bind(costs)
    if table is None:
        raise CompileCheckError(
            f"cost table {costs.name!r} refused to bind (missing or "
            "non-half-integral latency)")
    ctx = CostContext(costs, MODE_SW)
    result, writebacks = program.run(args, Charger(ctx, table))
    arrays = [copy for _, copy in writebacks]
    return result, ctx.total_cycles, list(ctx._counts), arrays


def check_entry(entry, make_args, costs: OperationCosts) -> Dict:
    """Differential for one function workload.

    Returns a report dict; ``compiled`` False (with ``reason``) when the
    kernel is outside the subset — that is a pass, not a failure, since
    the tier falls back to the interpreted run.  An actual divergence
    between the two runs raises :class:`CompileCheckError`.
    """
    args = make_args() if callable(make_args) else list(make_args)
    try:
        program = compile_kernel(entry, arg_shapes_of(args))
    except Unsupported as exc:
        return {"workload": entry.__name__, "compiled": False,
                "reason": str(exc)}

    i_result, i_cycles, i_counts, i_arrays = run_interpreted(
        entry, args, costs)
    c_result, c_cycles, c_counts, c_arrays = run_compiled(
        program, args, costs)

    label = entry.__name__
    if int(c_result) != int(i_result):
        raise CompileCheckError(
            f"check_compile: {label}: result {c_result!r} != "
            f"interpreted {i_result!r}")
    if c_arrays != i_arrays:
        raise CompileCheckError(
            f"check_compile: {label}: final array contents diverged")
    if c_cycles != i_cycles:
        raise CompileCheckError(
            f"check_compile: {label}: charged {c_cycles} cycles, "
            f"interpreted charged {i_cycles}")
    if c_counts != i_counts:
        raise CompileCheckError(
            f"check_compile: {label}: operation counts diverged")
    return {"workload": label, "compiled": True, "cycles": i_cycles,
            "blocks": len(program.blocks), "specs": program.spec_count}


def check_registry(costs: OperationCosts,
                   names: Optional[Sequence[str]] = None) -> List[Dict]:
    """Run the differential over every registered function workload."""
    from ..workloads import registry

    reports = []
    for name, (functions, make_args) in registry().items():
        if names is not None and name not in names:
            continue
        reports.append(check_entry(functions[0], make_args, costs))
        reports[-1]["workload"] = name
    return reports
