"""Compiled-program assembly and runtime for the bytecode tier.

:func:`compile_kernel` drives :mod:`.transform` over an entry kernel,
assembles every emitted specialization into one module AST, and runs it
through the builtin ``compile()`` — the emitted functions are plain
CPython bytecode operating on native ints and lists, with explicit
charge calls where the interpreted run would charge through the
annotated types.

A :class:`CompiledProgram` is cost-table agnostic: block multisets are
stored by operation *name* and bound to a concrete
:class:`~repro.annotate.costs.OperationCosts` on first use
(:meth:`CompiledProgram.bind`).  Binding validates that every operation
the program can charge has a latency and that each latency is
half-integral — that makes every pre-summed block charge bit-identical
to charging the operations one at a time, in any order (all sums live
on the 0.5-cycle grid, exact in binary floating point).  A table that
fails validation simply refuses to bind and the tier falls back to the
interpreted annotated run.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from ..annotate.context import CostContext
from ..annotate.costs import OP_IDS, OperationCosts
from .model import ANNOT, SH_ARR, SH_BOOL, SH_INT, SV, Unsupported
from .transform import _is_plain_int, _resolve_global, analyze_program


class BlockTable:
    """Per-cost-table binding: block id -> (cycles, op ids, op counts)."""

    __slots__ = ("triples", "op_cycles")

    def __init__(self, triples: List[Tuple[float, Tuple[int, ...],
                                           Tuple[int, ...]]],
                 op_cycles: Dict[int, float]):
        self.triples = triples
        self.op_cycles = op_cycles


class Charger:
    """Per-run adapter delegating block charges into a live context."""

    __slots__ = ("ctx", "triples", "op_cycles")

    def __init__(self, ctx: CostContext, table: BlockTable):
        self.ctx = ctx
        self.triples = table.triples
        self.op_cycles = table.op_cycles

    def charge_block(self, bid: int) -> None:
        cycles, ids, counts = self.triples[bid]
        self.ctx.charge_block(cycles, ids, counts)

    def charge_scaled(self, bid: int, trips: int) -> None:
        cycles, ids, counts = self.triples[bid]
        self.ctx.charge_block_scaled(cycles, ids, counts, trips)

    def charge_op(self, op: int) -> None:
        ctx = self.ctx
        ctx.total_cycles += self.op_cycles[op]
        ctx._counts[op] += 1


class NullCharger:
    """No-op charger for runs without an active cost context (the
    compiled analogue of annotated types executing functionally)."""

    __slots__ = ()

    def charge_block(self, bid: int) -> None:
        pass

    def charge_scaled(self, bid: int, trips: int) -> None:
        pass

    def charge_op(self, op: int) -> None:
        pass


NULL_CHARGER = NullCharger()


def _half_integral(latency) -> bool:
    return float(2 * latency).is_integer()


class CompiledProgram:
    """An entry kernel compiled to plain bytecode with folded charges."""

    def __init__(self, entry_fn, arg_shapes: Tuple[str, ...]):
        self.entry_fn = entry_fn
        self.arg_shapes = arg_shapes
        entry_svs = tuple(SV(shape, ANNOT) for shape in arg_shapes)
        program = analyze_program(entry_fn, entry_svs)
        self.blocks = program.blocks
        self.cond_ops = frozenset(program.cond_ops)
        self.spec_count = len(program.order)
        #: module-level ints baked in as constants: (fn, name, value)
        self.global_ints = tuple(program.global_ints.values())

        module = ast.Module(
            body=[spec.emitted for spec in program.order], type_ignores=[])
        ast.fix_missing_locations(module)
        filename = f"<compilebc:{entry_fn.__module__}.{entry_fn.__name__}>"
        code = compile(module, filename, "exec")
        namespace = {"__builtins__": {"range": range, "len": len,
                                      "abs": abs}}
        exec(code, namespace)
        entry_name = program.order[0].name
        self.entry = namespace[entry_name]
        self.source = ast.unparse(module)
        #: bind cache: id(costs) -> (costs ref, BlockTable | None).  The
        #: costs reference is pinned so the id key can never be reused.
        self._bindings: Dict[int, Tuple[OperationCosts,
                                        Optional[BlockTable]]] = {}

    def globals_stale(self) -> bool:
        """True when a module-level int snapshotted as a compile-time
        constant has since been rebound (or deleted / retyped) — the
        compiled code would silently diverge from the interpreted run,
        so callers caching programs must recompile."""
        for fn, name, value in self.global_ints:
            found, live = _resolve_global(fn, name)
            if not found or not _is_plain_int(live) or live != value:
                return True
        return False

    # -- cost binding -------------------------------------------------------

    def bind(self, costs: OperationCosts) -> Optional[BlockTable]:
        """Bind the block registry to a cost table (``None`` = refuse)."""
        cached = self._bindings.get(id(costs))
        if cached is not None:
            return cached[1]
        latencies = costs.latency_list()
        used = {name for block in self.blocks for name, _ in block}
        used.update(self.cond_ops)
        table: Optional[BlockTable] = None
        if all(latencies[OP_IDS[name]] is not None
               and _half_integral(latencies[OP_IDS[name]])
               for name in used):
            triples = []
            for block in self.blocks:
                ids = tuple(OP_IDS[name] for name, _ in block)
                counts = tuple(count for _, count in block)
                cycles = 0.0
                for op, count in zip(ids, counts):
                    cycles += latencies[op] * count
                triples.append((cycles, ids, counts))
            op_cycles = {OP_IDS[name]: latencies[OP_IDS[name]]
                         for name in self.cond_ops}
            table = BlockTable(triples, op_cycles)
        self._bindings[id(costs)] = (costs, table)
        return table

    def make_charger(self, ctx: Optional[CostContext]):
        """Charger for ``ctx`` (``None`` context charges nothing), or
        ``None`` when this context cannot be served exactly."""
        if ctx is None:
            return NULL_CHARGER
        if not ctx._fast:
            return None  # recorder attached / hw mode: per-op stream needed
        table = self.bind(ctx.costs)
        if table is None:
            return None
        return Charger(ctx, table)

    # -- running ------------------------------------------------------------

    def run(self, args, charger):
        """Execute on plain copies of ``args``.

        Returns ``(result, writebacks)`` where ``writebacks`` pairs each
        original list argument with the (possibly mutated) copy the
        kernel actually ran on — the caller decides whether to apply
        them (the executor writes back; benchmark runs discard).
        """
        call_args = []
        writebacks = []
        for arg, shape in zip(args, self.arg_shapes):
            if shape == SH_ARR:
                copy = [int(v) for v in arg]
                call_args.append(copy)
                writebacks.append((arg, copy))
            elif shape == SH_BOOL:
                call_args.append(bool(arg))
            else:
                call_args.append(int(arg))
        result = self.entry(charger, *call_args)
        return result, writebacks


def arg_shapes_of(args) -> Tuple[str, ...]:
    """Classify concrete call arguments into entry shapes.

    ``bool`` is checked before ``int`` (it is an ``int`` subclass) and
    maps to :data:`SH_BOOL` — predicate-parameterized kernels compile
    instead of falling back to interpreted charging; truth-testing the
    parameter charges a branch exactly like ``ABool.__bool__`` does.
    """
    shapes = []
    for arg in args:
        if isinstance(arg, list):
            shapes.append(SH_ARR)
        elif isinstance(arg, bool):
            shapes.append(SH_BOOL)
        elif isinstance(arg, int):
            shapes.append(SH_INT)
        else:
            raise Unsupported(
                f"entry argument of type {type(arg).__name__} is not "
                "supported")
    return tuple(shapes)


def compile_kernel(entry_fn, arg_shapes: Tuple[str, ...]) -> CompiledProgram:
    """Compile ``entry_fn`` (raises :class:`Unsupported` on rejection)."""
    return CompiledProgram(entry_fn, arg_shapes)
