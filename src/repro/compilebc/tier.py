"""The opt-in compile tier consulted by the annotated executor.

``PerformanceLibrary(compile=True)`` installs its :class:`CompileTier`
in the module-level slot while an analysed process is running (scoped
exactly like the current cost context: set on process resume, cleared
on suspend); the vocoder's annotated executor (and ``repro bench
--compile``) then routes kernel calls through compiled programs,
falling back to the interpreted annotated run for anything the
compiler rejects or any context the compiled charging cannot serve
exactly (recorder attached, hw mode, non-half-integral or missing
latencies).

``check_compile=True`` turns every compiled call into a differential:
the interpreted run remains the executed ground truth, and the compiled
program re-runs the same call on scratch state — results, array
write-backs, charged cycles and the full per-operation count vector
must all match exactly, else :class:`CompileCheckError`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..annotate.context import MODE_SW, CostContext, current_context
from ..annotate.costs import N_OPERATIONS
from .model import Unsupported
from .program import (
    NULL_CHARGER, Charger, CompiledProgram, arg_shapes_of, compile_kernel,
)


class CompileCheckError(AssertionError):
    """A compiled call diverged from the interpreted ground truth."""


class CompileTier:
    """Per-attachment compile-tier state: program cache + counters."""

    def __init__(self, check: bool = False):
        self.check = bool(check)
        #: (id(fn), shapes) -> (fn ref, program | None); the fn reference
        #: pins the id so the key can never be reused by a new object.
        self._programs: Dict[Tuple, Tuple[Callable,
                                          Optional[CompiledProgram]]] = {}
        self.rejections: Dict[str, str] = {}
        self.stats = {"compiled": 0, "rejected": 0, "runs": 0,
                      "fallbacks": 0, "checked": 0, "recompiled": 0}

    # -- program cache ------------------------------------------------------

    def program_for(self, fn, args) -> Optional[CompiledProgram]:
        try:
            shapes = arg_shapes_of(args)
        except Unsupported as exc:
            self.rejections.setdefault(getattr(fn, "__qualname__",
                                               repr(fn)), str(exc))
            return None
        key = (id(fn), shapes)
        cached = self._programs.get(key)
        if cached is not None:
            program = cached[1]
            if program is None or not program.globals_stale():
                return program
            # A module-level int baked in as a constant was rebound:
            # the cached program would keep charging/computing with the
            # stale snapshot, so recompile against the live value.
            self.stats["recompiled"] += 1
        try:
            program = compile_kernel(fn, shapes)
            self.stats["compiled"] += 1
        except Unsupported as exc:
            program = None
            self.stats["rejected"] += 1
            self.rejections.setdefault(getattr(fn, "__qualname__",
                                               repr(fn)), str(exc))
        self._programs[key] = (fn, program)
        return program

    # -- execution ----------------------------------------------------------

    def run_kernel(self, fn, args,
                   interpreted: Callable) -> Tuple[bool, Optional[int]]:
        """Run one executor-level kernel call through the tier.

        Returns ``(handled, result)``; ``handled`` False means the
        caller must take its interpreted path (``interpreted(fn, args)``
        is only invoked by the tier itself, in check mode).
        """
        program = self.program_for(fn, args)
        if program is None:
            return False, None
        ctx = current_context()
        charger = program.make_charger(ctx)
        if charger is None:
            self.stats["fallbacks"] += 1
            return False, None
        if self.check:
            result = self._run_checked(program, fn, args, ctx, interpreted)
            self.stats["checked"] += 1
            return True, result
        result, writebacks = program.run(args, charger)
        for original, copy in writebacks:
            original[:] = copy
        self.stats["runs"] += 1
        return True, int(result)

    def _run_checked(self, program: CompiledProgram, fn, args, ctx,
                     interpreted: Callable) -> int:
        saved = [list(a) if isinstance(a, list) else a for a in args]
        if ctx is not None:
            before_cycles = ctx.total_cycles
            before_counts = list(ctx._counts)
        result = interpreted(fn, args)  # ground truth, incl. write-backs
        if ctx is not None:
            delta_cycles = ctx.total_cycles - before_cycles
            delta_counts = [after - before for after, before
                            in zip(ctx._counts, before_counts)]
            scratch = CostContext(ctx.costs, MODE_SW)
            charger = Charger(scratch, program.bind(ctx.costs))
        else:
            delta_cycles, delta_counts = 0.0, [0] * N_OPERATIONS
            scratch, charger = None, NULL_CHARGER
        compiled_result, writebacks = program.run(saved, charger)

        label = getattr(fn, "__qualname__", repr(fn))
        if int(compiled_result) != int(result):
            raise CompileCheckError(
                f"check_compile: {label}: result {int(compiled_result)} != "
                f"interpreted {int(result)}")
        originals = [arg for arg in args if isinstance(arg, list)]
        for original, (_, copy) in zip(originals, writebacks):
            if copy != original:
                raise CompileCheckError(
                    f"check_compile: {label}: array write-back diverged")
        compiled_cycles = scratch.total_cycles if scratch else 0.0
        compiled_counts = list(scratch._counts) if scratch else delta_counts
        if compiled_cycles != delta_cycles:
            raise CompileCheckError(
                f"check_compile: {label}: charged {compiled_cycles} cycles, "
                f"interpreted charged {delta_cycles}")
        if compiled_counts != delta_counts:
            raise CompileCheckError(
                f"check_compile: {label}: operation counts diverged: "
                f"{compiled_counts} != {delta_counts}")
        return int(result)


# ---------------------------------------------------------------------------
# The module-level tier slot (mirrors the current-context slot).
# ---------------------------------------------------------------------------

_tier: Optional[CompileTier] = None


def current_tier() -> Optional[CompileTier]:
    return _tier


def set_tier(tier: Optional[CompileTier]) -> Optional[CompileTier]:
    global _tier
    previous = _tier
    _tier = tier
    return previous
