"""Shared model for the bytecode compile tier.

The tier compiles an annotated kernel to plain CPython with the cost
charging *folded out* of the data path: inside compiled code every value
is a native ``int``/``bool``/``list`` and charging happens through
explicit block charges instead of operator-dunder dispatch.  To know
which charges to emit, the compiler classifies every variable and
expression on a small static lattice:

* **kind** — would this value be an annotated (`AInt`/`ABool`) object in
  the interpreted run?  ``PLAIN`` (never), ``ANNOT`` (always), or
  ``EITHER`` (depends on the path taken; tracked with a runtime boolean
  flag in the compiled code).  The lattice is the join semilattice
  ``BOT < PLAIN, ANNOT < EITHER`` — conveniently, bitwise ``|`` on the
  encodings below *is* the join.
* **shape** — ``int``, ``bool`` (comparison results), ``arr`` (arrays),
  or ``none`` (a helper that can fall off the end).

Anything outside the compilable subset raises :class:`Unsupported`; the
tier then falls back to the interpreted annotated run for that kernel,
so rejection is always safe (see ``docs/internals.md``).
"""

from __future__ import annotations

import ast
from typing import Optional, Tuple

from ..annotate.costs import OP_IDS

# -- kinds -------------------------------------------------------------------

BOT = 0      # unassigned (bottom)
PLAIN = 1    # always a native value in the interpreted run
ANNOT = 2    # always an annotated value in the interpreted run
EITHER = 3   # PLAIN | ANNOT: path-dependent, needs a runtime flag

KIND_NAMES = {BOT: "bot", PLAIN: "plain", ANNOT: "annot", EITHER: "either"}

# -- shapes ------------------------------------------------------------------

SH_INT = "int"
SH_BOOL = "bool"
SH_ARR = "arr"
SH_NONE = "none"


class SV:
    """A static value: (shape, kind) with an optional known constant."""

    __slots__ = ("shape", "kind")

    def __init__(self, shape: str, kind: int):
        self.shape = shape
        self.kind = kind

    def __eq__(self, other):
        return (isinstance(other, SV) and self.shape == other.shape
                and self.kind == other.kind)

    def __hash__(self):
        return hash((self.shape, self.kind))

    def __repr__(self):
        return f"SV({self.shape}, {KIND_NAMES[self.kind]})"


def join(a: SV, b: SV, where: str = "") -> SV:
    """Join two static values; shapes must agree (modulo BOT)."""
    if a.kind == BOT:
        return b
    if b.kind == BOT:
        return a
    if a.shape != b.shape:
        raise Unsupported(
            f"variable takes both {a.shape} and {b.shape} values{where}")
    return SV(a.shape, a.kind | b.kind)


class Unsupported(Exception):
    """The construct is outside the compilable subset (safe fallback)."""

    def __init__(self, reason: str, node: Optional[ast.AST] = None):
        if node is not None and hasattr(node, "lineno"):
            reason = f"line {node.lineno}: {reason}"
        super().__init__(reason)
        self.reason = reason


# -- operator tables ---------------------------------------------------------

#: AST binary operators -> charged operation name (integer domain).
BIN_OPS = {
    ast.Add: "add", ast.Sub: "sub", ast.Mult: "mul",
    ast.FloorDiv: "div", ast.Mod: "mod",
    ast.LShift: "shl", ast.RShift: "shr",
    ast.BitAnd: "and", ast.BitOr: "or", ast.BitXor: "xor",
}

#: AST comparison operators -> charged operation name.
CMP_OPS = {
    ast.Lt: "lt", ast.LtE: "le", ast.Gt: "gt", ast.GtE: "ge",
    ast.Eq: "eq", ast.NotEq: "ne",
}

#: A comparison whose left operand is plain and right operand annotated
#: dispatches through Python's *reflected* protocol — ``plain < AInt``
#: calls ``AInt.__gt__`` — so the mirrored operation is charged.
MIRROR = {"lt": "gt", "gt": "lt", "le": "ge", "ge": "le",
          "eq": "eq", "ne": "ne"}

#: AST unary operators -> charged operation name.  ``UAdd`` is absent on
#: purpose: the annotated types define no ``__pos__``.
UNARY_OPS = {ast.USub: "neg", ast.Invert: "inv"}

OP_LOAD = OP_IDS["load"]
OP_STORE = OP_IDS["store"]
OP_ASSIGN = OP_IDS["assign"]
OP_CALL = OP_IDS["call"]
OP_ADD = OP_IDS["add"]
OP_BRANCH = OP_IDS["branch"]


def spec_key(fn, kinds: Tuple) -> Tuple:
    return (id(fn), kinds)
