"""AST transformation for the bytecode compile tier.

Two phases over the same kernel ASTs:

1. **Kind analysis** (:class:`Analyzer`) — a flow-insensitive optimistic
   fixpoint assigning every local variable a static value
   (shape × kind, see :mod:`.model`).  Flow-insensitivity is sound
   because the kind lattice joins over *all* assignments: if a variable
   is classified ``ANNOT`` it is annotated at every use in the
   interpreted run, and ``EITHER`` variables get a runtime boolean flag
   in the compiled code.  Callees (decorated or plain helpers) are
   *specialized* per argument-kind tuple; return kinds fixpoint across
   the whole program (recursion starts at ⊥).

2. **Emission** (:class:`Emitter`) — rebuilds each specialization as a
   plain-Python function: annotated wrappers disappear (native ints and
   lists), and the charges the interpreted run would make are folded
   into per-block multisets charged with one
   ``__c.charge_block(block_id)`` call, scaled whole-loop charges
   (``charge_scaled``) for counted loops with unconditionally-charging
   bodies, and flag-gated single-operation charges (``charge_op``) where
   the charge is data-dependent (the dynamic fallback of the tier).

The emitted charge placement is *totals-exact*, not trace-exact: within
one straight-line region charges may be reordered or batched, which is
bit-identical for the final estimate because every latency is validated
half-integral at bind time (sums in units of 0.5 are exact floats in
any order).  ``check_compile`` asserts the equality per kernel call.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from collections import Counter
from typing import Dict, List, Optional, Tuple

from ..annotate import functions as _afunctions
from ..annotate.costs import OP_IDS
from .model import (
    ANNOT, BIN_OPS, BOT, CMP_OPS, EITHER, MIRROR, PLAIN, SH_ARR, SH_BOOL,
    SH_INT, SH_NONE, SV, UNARY_OPS, Unsupported, join,
)

_INTRINSIC_ARANGE = _afunctions.arange
_INTRINSIC_AINT = _afunctions.aint
_INTRINSIC_MAKE_ARRAY = _afunctions.make_array

#: Flags: ``True`` (always annotated), or a frozenset of ``EITHER``
#: variable names whose runtime-flag disjunction decides it (the empty
#: set meaning "never annotated").
FLAG_FALSE = frozenset()


def _or_flags(a, b):
    if a is True or b is True:
        return True
    return a | b


def _flag_name(var: str) -> str:
    return f"__f_{var}"


def _flag_ast(flag) -> ast.expr:
    """Build a fresh AST expression for a flag value."""
    if flag is True:
        return ast.Constant(value=True)
    names = sorted(flag)
    if not names:
        return ast.Constant(value=False)
    if len(names) == 1:
        return ast.Name(id=_flag_name(names[0]), ctx=ast.Load())
    return ast.BoolOp(op=ast.Or(), values=[
        ast.Name(id=_flag_name(n), ctx=ast.Load()) for n in names])


def function_ast(fn) -> ast.FunctionDef:
    """Parse a function's source into its (cached) ``FunctionDef``."""
    cached = getattr(fn, "__compilebc_ast__", None)
    if cached is not None:
        return cached
    try:
        source = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError) as exc:
        raise Unsupported(f"no retrievable source for {fn!r}: {exc}")
    tree = ast.parse(source)
    if not tree.body or not isinstance(tree.body[0], ast.FunctionDef):
        raise Unsupported(f"{fn!r} is not a plain function definition")
    node = tree.body[0]
    try:
        fn.__compilebc_ast__ = node
    except (AttributeError, TypeError):
        pass
    return node


class Spec:
    """One (function, argument-kind) specialization."""

    def __init__(self, fn, name: str, arg_svs: Tuple[SV, ...],
                 decorated: bool):
        self.fn = fn
        self.name = name
        self.arg_svs = arg_svs
        self.decorated = decorated
        self.tree = function_ast(fn)
        params = self.tree.args
        if (params.vararg or params.kwarg or params.kwonlyargs
                or params.defaults or params.posonlyargs):
            raise Unsupported(
                f"{fn.__name__}: only plain positional parameters are "
                "supported", self.tree)
        self.params = [a.arg for a in params.args]
        if len(self.params) != len(arg_svs):
            raise Unsupported(
                f"{fn.__name__} called with {len(arg_svs)} argument(s), "
                f"takes {len(self.params)}")
        self.env: Dict[str, SV] = dict(zip(self.params, arg_svs))
        self.ret = SV(SH_NONE, BOT)
        self.emitted: Optional[ast.FunctionDef] = None

    def is_entry(self) -> bool:
        return self.name.endswith("__entry")


class Program:
    """Specialization registry + block registry for one entry kernel."""

    def __init__(self, entry_fn):
        self.entry_fn = entry_fn
        self.specs: Dict[Tuple, Spec] = {}
        self.order: List[Spec] = []
        self.blocks: List[Tuple[Tuple[str, int], ...]] = []
        self._block_ids: Dict[Tuple, int] = {}
        self.cond_ops: set = set()
        #: module-level integers baked in as compile-time constants,
        #: (id(fn), name) -> (fn ref, name, snapshotted value); callers
        #: can re-resolve these to detect a rebinding after compilation.
        self.global_ints: Dict[Tuple[int, str], Tuple] = {}
        self.changed = False

    def request_spec(self, fn, arg_svs: Tuple[SV, ...],
                     decorated: bool, entry: bool = False) -> Spec:
        key = (id(fn), arg_svs)
        spec = self.specs.get(key)
        if spec is None:
            suffix = "__entry" if entry else f"__s{len(self.specs)}"
            spec = Spec(fn, f"{fn.__name__}{suffix}", arg_svs, decorated)
            self.specs[key] = spec
            self.order.append(spec)
            self.changed = True
        return spec

    def note_global_int(self, fn, name: str, value: int) -> None:
        self.global_ints[(id(fn), name)] = (fn, name, value)

    def add_block(self, counts: Counter) -> int:
        key = tuple(sorted(counts.items()))
        bid = self._block_ids.get(key)
        if bid is None:
            bid = len(self.blocks)
            self._block_ids[key] = bid
            self.blocks.append(key)
        return bid


def _resolve_global(fn, name: str):
    ns = getattr(fn, "__globals__", {})
    if name in ns:
        return True, ns[name]
    builtins_ns = ns.get("__builtins__", {})
    if not isinstance(builtins_ns, dict):
        builtins_ns = vars(builtins_ns)
    if name in builtins_ns:
        return True, builtins_ns[name]
    return False, None


def _is_plain_int(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _callee_of(spec: Spec, call: ast.Call):
    """Classify a call: ('arange'|'aint'|'make_array'|'abs') intrinsics,
    or ('callee', plain_fn, decorated)."""
    if not isinstance(call.func, ast.Name):
        raise Unsupported("only calls to plain names are supported", call)
    if call.keywords:
        raise Unsupported("keyword arguments are not supported", call)
    found, target = _resolve_global(spec.fn, call.func.id)
    if not found:
        raise Unsupported(f"unresolvable callee {call.func.id!r}", call)
    if target is _INTRINSIC_ARANGE:
        return ("arange",)
    if target is range:
        return ("range",)
    if target is _INTRINSIC_AINT:
        return ("aint",)
    if target is _INTRINSIC_MAKE_ARRAY:
        return ("make_array",)
    if target is abs:
        return ("abs",)
    wrapped = getattr(target, "__wrapped__", None)
    if wrapped is not None and inspect.isfunction(wrapped):
        return ("callee", wrapped, True)
    if inspect.isfunction(target):
        return ("callee", target, False)
    raise Unsupported(
        f"callee {call.func.id!r} is not a compilable function", call)


def _binop_kind(lk: int, rk: int) -> int:
    """Result kind of a charged binary operation (either-annotated
    operand forces an annotated result)."""
    if lk == ANNOT or rk == ANNOT:
        return ANNOT
    return lk | rk


# ---------------------------------------------------------------------------
# Phase 1: kind analysis
# ---------------------------------------------------------------------------

class Analyzer:
    """One fixpoint pass over a spec's body, joining into ``spec.env``."""

    def __init__(self, program: Program, spec: Spec):
        self.prog = program
        self.spec = spec

    def run(self) -> None:
        for _ in range(8):
            before = (dict(self.spec.env), self.spec.ret)
            for stmt in self.spec.tree.body:
                self.stmt(stmt)
            if (self.spec.env, self.spec.ret) == before:
                return
        raise Unsupported(
            f"{self.spec.fn.__name__}: kind analysis did not converge")

    # -- expressions --------------------------------------------------------

    def expr(self, node: ast.expr) -> SV:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return SV(SH_BOOL, PLAIN)
            if isinstance(node.value, int):
                return SV(SH_INT, PLAIN)
            raise Unsupported(
                f"unsupported constant {node.value!r} (integer-only subset)",
                node)
        if isinstance(node, ast.Name):
            if node.id in self.spec.env:
                return self.spec.env[node.id]
            found, value = _resolve_global(self.spec.fn, node.id)
            if found and _is_plain_int(value):
                return SV(SH_INT, PLAIN)
            raise Unsupported(f"unresolvable name {node.id!r}", node)
        if isinstance(node, ast.BinOp):
            if type(node.op) not in BIN_OPS:
                raise Unsupported(
                    f"unsupported operator {type(node.op).__name__} "
                    "(integer-only subset)", node)
            left = self.int_operand(node.left)
            right = self.int_operand(node.right)
            return SV(SH_INT, _binop_kind(left.kind, right.kind))
        if isinstance(node, ast.Compare):
            if len(node.ops) != 1:
                raise Unsupported("chained comparisons are not supported",
                                  node)
            if type(node.ops[0]) not in CMP_OPS:
                raise Unsupported(
                    f"unsupported comparison {type(node.ops[0]).__name__}",
                    node)
            left = self.int_operand(node.left)
            right = self.int_operand(node.comparators[0])
            return SV(SH_BOOL, _binop_kind(left.kind, right.kind))
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.Not):
                self.truth(node.operand)
                return SV(SH_BOOL, PLAIN)
            if type(node.op) not in UNARY_OPS:
                raise Unsupported(
                    f"unsupported unary {type(node.op).__name__}", node)
            operand = self.int_operand(node.operand)
            return SV(SH_INT, operand.kind)
        if isinstance(node, ast.Subscript):
            return self.subscript(node)
        if isinstance(node, ast.Call):
            return self.call(node)
        raise Unsupported(
            f"unsupported expression {type(node).__name__}", node)

    def int_operand(self, node: ast.expr) -> SV:
        sv = self.expr(node)
        if sv.kind == BOT:
            return sv
        if sv.shape != SH_INT:
            raise Unsupported(
                f"arithmetic on a {sv.shape} value is not supported", node)
        return sv

    def truth(self, node: ast.expr) -> SV:
        sv = self.expr(node)
        if sv.kind != BOT and sv.shape not in (SH_INT, SH_BOOL):
            raise Unsupported(
                f"truth test on a {sv.shape} value is not supported", node)
        return sv

    def subscript(self, node: ast.Subscript) -> SV:
        arr = self.expr(node.value)
        if arr.kind != BOT and arr.shape != SH_ARR:
            raise Unsupported("subscript of a non-array value", node)
        if isinstance(node.slice, (ast.Slice, ast.Tuple)):
            raise Unsupported("array slicing is not supported", node)
        self.int_operand(node.slice)
        return SV(SH_INT, ANNOT)

    def call(self, node: ast.Call) -> SV:
        kind = _callee_of(self.spec, node)
        if kind[0] in ("arange", "range"):
            raise Unsupported(
                f"{kind[0]}() is only supported as a for-loop iterator",
                node)
        if kind[0] == "aint":
            if len(node.args) != 1:
                raise Unsupported("aint() takes exactly one argument", node)
            self.int_operand(node.args[0])
            return SV(SH_INT, ANNOT)
        if kind[0] == "make_array":
            if len(node.args) != 1:
                raise Unsupported("make_array() takes exactly one argument",
                                  node)
            self.int_operand(node.args[0])
            return SV(SH_ARR, ANNOT)
        if kind[0] == "abs":
            if len(node.args) != 1:
                raise Unsupported("abs() takes exactly one argument", node)
            operand = self.int_operand(node.args[0])
            return SV(SH_INT, operand.kind)
        _, fn, decorated = kind
        arg_svs = []
        for arg in node.args:
            sv = self.expr(arg)
            if sv.kind == BOT:
                return SV(SH_INT, BOT)  # revisit once the argument settles
            if sv.kind == EITHER:
                raise Unsupported(
                    "call argument with a path-dependent annotation kind",
                    node)
            if sv.shape not in (SH_INT, SH_ARR):
                raise Unsupported(
                    f"call argument of shape {sv.shape} is not supported",
                    node)
            arg_svs.append(sv)
        spec = self.prog.request_spec(fn, tuple(arg_svs), decorated)
        return spec.ret

    # -- statements ---------------------------------------------------------

    def stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign):
            if len(node.targets) != 1:
                raise Unsupported("multiple assignment targets", node)
            self.assign(node.targets[0], self.expr(node.value), node)
            return
        if isinstance(node, ast.AugAssign):
            if not isinstance(node.target, ast.Name):
                raise Unsupported(
                    "augmented assignment to a non-name target", node)
            if type(node.op) not in BIN_OPS:
                raise Unsupported(
                    f"unsupported operator {type(node.op).__name__}", node)
            desugared = ast.BinOp(
                left=ast.Name(id=node.target.id, ctx=ast.Load()),
                op=node.op, right=node.value)
            ast.copy_location(desugared, node)
            ast.fix_missing_locations(desugared)
            self.assign(node.target, self.expr(desugared), node)
            return
        if isinstance(node, ast.Expr):
            if isinstance(node.value, ast.Constant) and isinstance(
                    node.value.value, str):
                return  # docstring
            if not isinstance(node.value, ast.Call):
                raise Unsupported("expression statements must be calls",
                                  node.value)
            self.call(node.value)
            return
        if isinstance(node, ast.If):
            self.truth(node.test)
            for sub in node.body:
                self.stmt(sub)
            for sub in node.orelse:
                self.stmt(sub)
            return
        if isinstance(node, ast.While):
            if node.orelse:
                raise Unsupported("while/else is not supported",
                                  node.orelse[0])
            for operand in self.while_operands(node.test):
                self.truth(operand)
            for sub in node.body:
                self.stmt(sub)
            return
        if isinstance(node, ast.For):
            self.for_stmt(node)
            return
        if isinstance(node, ast.Return):
            if node.value is None:
                ret = SV(SH_NONE, PLAIN)
            else:
                ret = self.expr(node.value)
            if ret.kind != BOT:
                self.spec.ret = join(self.spec.ret, ret,
                                     f" (returns of {self.spec.fn.__name__})")
            return
        if isinstance(node, (ast.Break, ast.Continue, ast.Pass)):
            return
        raise Unsupported(f"unsupported statement {type(node).__name__}",
                          node)

    @staticmethod
    def while_operands(test: ast.expr) -> List[ast.expr]:
        if isinstance(test, ast.BoolOp):
            if not isinstance(test.op, ast.And):
                raise Unsupported("only 'and' while-conditions are supported",
                                  test)
            for value in test.values:
                if isinstance(value, ast.BoolOp):
                    raise Unsupported("nested boolean while-conditions",
                                      value)
            return list(test.values)
        return [test]

    def assign(self, target: ast.expr, sv: SV, node: ast.stmt) -> None:
        if isinstance(target, ast.Name):
            if sv.kind != BOT and sv.shape == SH_NONE:
                raise Unsupported(
                    "assignment of a None-returning call result", node)
            current = self.spec.env.get(target.id, SV(SH_NONE, BOT))
            self.spec.env[target.id] = join(
                current, sv, f" (variable {target.id!r})")
            return
        if isinstance(target, ast.Subscript):
            self.subscript_store(target)
            return
        raise Unsupported(
            f"unsupported assignment target {type(target).__name__}", node)

    def subscript_store(self, target: ast.Subscript) -> None:
        arr = self.expr(target.value)
        if arr.kind != BOT and arr.shape != SH_ARR:
            raise Unsupported("subscript store to a non-array value", target)
        if isinstance(target.slice, (ast.Slice, ast.Tuple)):
            raise Unsupported("array slicing is not supported", target)
        self.int_operand(target.slice)

    def for_stmt(self, node: ast.For) -> None:
        if node.orelse:
            raise Unsupported("for/else is not supported", node.orelse[0])
        if not isinstance(node.target, ast.Name):
            raise Unsupported("for target must be a simple name",
                              node.target)
        if not isinstance(node.iter, ast.Call):
            raise Unsupported(
                "for loops must iterate over arange()/range()", node.iter)
        kind = _callee_of(self.spec, node.iter)
        if kind[0] not in ("arange", "range"):
            raise Unsupported(
                "for loops must iterate over arange()/range()", node.iter)
        if not 1 <= len(node.iter.args) <= 3:
            raise Unsupported(f"{kind[0]}() takes 1 to 3 arguments",
                              node.iter)
        for bound in node.iter.args:
            self.int_operand(bound)
        target_kind = ANNOT if kind[0] == "arange" else PLAIN
        self.assign(node.target, SV(SH_INT, target_kind), node)
        for sub in node.body:
            self.stmt(sub)


# ---------------------------------------------------------------------------
# Phase 2: emission
# ---------------------------------------------------------------------------

def _charge_call(method: str, args: List[ast.expr]) -> ast.stmt:
    return ast.Expr(value=ast.Call(
        func=ast.Attribute(value=ast.Name(id="__c", ctx=ast.Load()),
                           attr=method, ctx=ast.Load()),
        args=args, keywords=[]))


class Emitter:
    """Emit one spec as a plain function with folded block charges."""

    def __init__(self, program: Program, spec: Spec):
        self.prog = program
        self.spec = spec
        self.pending: Counter = Counter()
        self.cond: List[ast.stmt] = []
        self.tmp = 0

    # -- charge plumbing ----------------------------------------------------

    def flush(self, out: List[ast.stmt]) -> None:
        if self.pending:
            bid = self.prog.add_block(self.pending)
            out.append(_charge_call("charge_block",
                                    [ast.Constant(value=bid)]))
            self.pending = Counter()

    def charge(self, op: str, flag) -> None:
        """Charge ``op`` on the paths where ``flag`` holds."""
        if flag is True:
            self.pending[op] += 1
        elif flag:  # non-empty frozenset: data-dependent -> dynamic charge
            self.prog.cond_ops.add(op)
            self.cond.append(ast.If(
                test=_flag_ast(flag),
                body=[_charge_call("charge_op",
                                   [ast.Constant(value=OP_IDS[op])])],
                orelse=[]))

    def charge_compare(self, op: str, lflag, rflag) -> None:
        """Compare charging with the reflected-dispatch mirror rule."""
        if lflag is True:
            self.pending[op] += 1
            return
        mirrored = MIRROR[op]
        if not lflag:  # left never annotated: right decides, mirrored
            self.charge(mirrored, rflag)
            return
        # left is data-dependent
        self.prog.cond_ops.add(op)
        charge_op = [_charge_call("charge_op",
                                  [ast.Constant(value=OP_IDS[op])])]
        if rflag is True:
            self.prog.cond_ops.add(mirrored)
            orelse = [_charge_call("charge_op",
                                   [ast.Constant(value=OP_IDS[mirrored])])]
        elif rflag:
            self.prog.cond_ops.add(mirrored)
            orelse = [ast.If(
                test=_flag_ast(rflag),
                body=[_charge_call("charge_op",
                                   [ast.Constant(value=OP_IDS[mirrored])])],
                orelse=[])]
        else:
            orelse = []
        self.cond.append(ast.If(test=_flag_ast(lflag), body=charge_op,
                                orelse=orelse))

    def drain_cond(self, out: List[ast.stmt]) -> None:
        out.extend(self.cond)
        self.cond = []

    # -- expressions --------------------------------------------------------

    def sv_of(self, name: str) -> SV:
        return self.spec.env.get(name, SV(SH_NONE, BOT))

    def flag_of(self, sv: SV, var: Optional[str] = None):
        if sv.kind == ANNOT:
            return True
        if sv.kind == PLAIN:
            return FLAG_FALSE
        if sv.kind == EITHER and var is not None:
            return frozenset((var,))
        raise Unsupported(f"value of kind {sv.kind} has no flag")

    def expr(self, node: ast.expr) -> Tuple[ast.expr, SV, object]:
        if isinstance(node, ast.Constant):
            sv = (SV(SH_BOOL, PLAIN) if isinstance(node.value, bool)
                  else SV(SH_INT, PLAIN))
            return ast.Constant(value=node.value), sv, FLAG_FALSE
        if isinstance(node, ast.Name):
            if node.id in self.spec.env:
                sv = self.spec.env[node.id]
                if sv.kind == BOT:
                    raise Unsupported(
                        f"{node.id!r} is read but never assigned", node)
                return (ast.Name(id=node.id, ctx=ast.Load()), sv,
                        self.flag_of(sv, node.id))
            found, value = _resolve_global(self.spec.fn, node.id)
            if found and _is_plain_int(value):
                # snapshot module-level integer constants at compile
                # time; the tier re-validates the snapshot per call
                self.prog.note_global_int(self.spec.fn, node.id, value)
                return (ast.Constant(value=value), SV(SH_INT, PLAIN),
                        FLAG_FALSE)
            raise Unsupported(f"unresolvable name {node.id!r}", node)
        if isinstance(node, ast.BinOp):
            op = BIN_OPS[type(node.op)]
            left, lsv, lflag = self.expr(node.left)
            right, rsv, rflag = self.expr(node.right)
            flag = _or_flags(lflag, rflag)
            self.charge(op, flag)
            return (ast.BinOp(left=left, op=type(node.op)(), right=right),
                    SV(SH_INT, _binop_kind(lsv.kind, rsv.kind)), flag)
        if isinstance(node, ast.Compare):
            op = CMP_OPS[type(node.ops[0])]
            left, lsv, lflag = self.expr(node.left)
            right, rsv, rflag = self.expr(node.comparators[0])
            self.charge_compare(op, lflag, rflag)
            flag = _or_flags(lflag, rflag)
            return (ast.Compare(left=left, ops=[type(node.ops[0])()],
                                comparators=[right]),
                    SV(SH_BOOL, _binop_kind(lsv.kind, rsv.kind)), flag)
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.Not):
                operand, sv, flag = self.expr(node.operand)
                if sv.shape == SH_BOOL:
                    self.charge("branch", flag)
                return (ast.UnaryOp(op=ast.Not(), operand=operand),
                        SV(SH_BOOL, PLAIN), FLAG_FALSE)
            op = UNARY_OPS[type(node.op)]
            operand, sv, flag = self.expr(node.operand)
            self.charge(op, flag)
            return (ast.UnaryOp(op=type(node.op)(), operand=operand),
                    SV(SH_INT, sv.kind), flag)
        if isinstance(node, ast.Subscript):
            value, _, _ = self.expr(node.value)
            index, _, _ = self.expr(node.slice)
            self.pending["load"] += 1
            return (ast.Subscript(value=value, slice=index, ctx=ast.Load()),
                    SV(SH_INT, ANNOT), True)
        if isinstance(node, ast.Call):
            return self.call(node)
        raise Unsupported(f"unsupported expression {type(node).__name__}",
                          node)

    def call(self, node: ast.Call) -> Tuple[ast.expr, SV, object]:
        kind = _callee_of(self.spec, node)
        if kind[0] == "aint":
            inner, _, _ = self.expr(node.args[0])
            return inner, SV(SH_INT, ANNOT), True
        if kind[0] == "make_array":
            length, _, _ = self.expr(node.args[0])
            built = ast.BinOp(
                left=ast.List(elts=[ast.Constant(value=0)], ctx=ast.Load()),
                op=ast.Mult(), right=length)
            return built, SV(SH_ARR, ANNOT), True
        if kind[0] == "abs":
            operand, sv, flag = self.expr(node.args[0])
            self.charge("abs", flag)
            call = ast.Call(func=ast.Name(id="abs", ctx=ast.Load()),
                            args=[operand], keywords=[])
            return call, SV(SH_INT, sv.kind), flag
        if kind[0] in ("arange", "range"):
            raise Unsupported(
                f"{kind[0]}() is only supported as a for-loop iterator",
                node)
        _, fn, decorated = kind
        args = []
        arg_svs = []
        for arg in node.args:
            new, sv, _ = self.expr(arg)
            if sv.kind == EITHER:
                raise Unsupported(
                    "call argument with a path-dependent annotation kind",
                    node)
            args.append(new)
            arg_svs.append(sv)
        spec = self.prog.request_spec(fn, tuple(arg_svs), decorated)
        if decorated:
            self.pending["call"] += 1
            self.pending["assign"] += len(args)
        ret = spec.ret
        if ret.kind == BOT:
            ret = SV(SH_NONE, PLAIN)
        flag = FLAG_FALSE if ret.shape == SH_NONE else self.flag_of(ret)
        call = ast.Call(func=ast.Name(id=spec.name, ctx=ast.Load()),
                        args=[ast.Name(id="__c", ctx=ast.Load())] + args,
                        keywords=[])
        return call, ret, flag

    def truth(self, node: ast.expr) -> Tuple[ast.expr, object]:
        """Transform a truth-tested expression, charging the branch."""
        new, sv, flag = self.expr(node)
        if sv.shape == SH_BOOL:
            # ABool.__bool__ charges the branch; AInt truth tests are free
            self.charge("branch", flag)
        return new, flag

    # -- statements ---------------------------------------------------------

    def emit_function(self) -> ast.FunctionDef:
        out: List[ast.stmt] = []
        self.body(self.spec.tree.body, out, toplevel=True)
        self.drain_cond(out)
        self.flush(out)
        if not out or not isinstance(out[-1], ast.Return):
            out.append(ast.Return(value=ast.Constant(value=None)))
        # a parsed stub keeps the node portable across ast schema
        # changes (e.g. FunctionDef.type_params appearing in 3.12)
        fn = ast.parse("def _stub(): pass").body[0]
        fn.name = self.spec.name
        fn.args = ast.arguments(
            posonlyargs=[],
            args=[ast.arg(arg="__c")] + [ast.arg(arg=p)
                                         for p in self.spec.params],
            vararg=None, kwonlyargs=[], kw_defaults=[], kwarg=None,
            defaults=[])
        fn.body = out
        self.spec.emitted = fn
        return fn

    def body(self, stmts: List[ast.stmt], out: List[ast.stmt],
             toplevel: bool = False) -> None:
        for index, stmt in enumerate(stmts):
            if (toplevel and index == 0 and isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str)):
                continue  # docstring
            self.stmt(stmt, out)

    def assign_flag(self, name: str, flag, out: List[ast.stmt]) -> None:
        if self.sv_of(name).kind == EITHER:
            out.append(ast.Assign(
                targets=[ast.Name(id=_flag_name(name), ctx=ast.Store())],
                value=_flag_ast(flag)))

    def stmt(self, node: ast.stmt, out: List[ast.stmt]) -> None:
        if isinstance(node, ast.Assign):
            self.emit_assign(node.targets[0], node.value, out)
            return
        if isinstance(node, ast.AugAssign):
            desugared = ast.BinOp(
                left=ast.Name(id=node.target.id, ctx=ast.Load()),
                op=node.op, right=node.value)
            self.emit_assign(node.target, desugared, out)
            return
        if isinstance(node, ast.Expr):
            if isinstance(node.value, ast.Constant):
                return
            new, _, _ = self.call(node.value)
            self.drain_cond(out)
            out.append(ast.Expr(value=new))
            return
        if isinstance(node, ast.If):
            self.emit_if(node, out)
            return
        if isinstance(node, ast.While):
            self.emit_while(node, out)
            return
        if isinstance(node, ast.For):
            self.emit_for(node, out)
            return
        if isinstance(node, ast.Return):
            if node.value is None:
                value = ast.Constant(value=None)
            else:
                value, _, _ = self.expr(node.value)
            self.drain_cond(out)
            self.flush(out)
            out.append(ast.Return(value=value))
            return
        if isinstance(node, ast.Break):
            self.flush(out)
            out.append(ast.Break())
            return
        if isinstance(node, ast.Continue):
            self.flush(out)
            out.append(ast.Continue())
            return
        if isinstance(node, ast.Pass):
            return
        raise Unsupported(f"unsupported statement {type(node).__name__}",
                          node)

    def emit_assign(self, target: ast.expr, value: ast.expr,
                    out: List[ast.stmt]) -> None:
        if isinstance(target, ast.Name):
            new, _, flag = self.expr(value)
            self.drain_cond(out)
            out.append(ast.Assign(
                targets=[ast.Name(id=target.id, ctx=ast.Store())],
                value=new))
            self.assign_flag(target.id, flag, out)
            return
        # subscript store
        arr, _, _ = self.expr(target.value)
        index, _, _ = self.expr(target.slice)
        new, _, _ = self.expr(value)
        self.pending["store"] += 1
        self.drain_cond(out)
        out.append(ast.Assign(
            targets=[ast.Subscript(value=arr, slice=index,
                                   ctx=ast.Store())],
            value=new))

    def emit_if(self, node: ast.If, out: List[ast.stmt]) -> None:
        test, _ = self.truth(node.test)
        self.drain_cond(out)
        self.flush(out)
        body: List[ast.stmt] = []
        self.body(node.body, body)
        self.flush(body)
        orelse: List[ast.stmt] = []
        self.body(node.orelse, orelse)
        self.flush(orelse)
        out.append(ast.If(test=test, body=body or [ast.Pass()],
                          orelse=orelse))

    def emit_while(self, node: ast.While, out: List[ast.stmt]) -> None:
        if node.orelse:
            raise Unsupported("while/else is not supported", node.orelse[0])
        self.flush(out)
        body: List[ast.stmt] = []
        for operand in Analyzer.while_operands(node.test):
            test, _ = self.truth(operand)
            self.flush(body)
            self.drain_cond(body)
            body.append(ast.If(
                test=ast.UnaryOp(op=ast.Not(), operand=test),
                body=[ast.Break()], orelse=[]))
        self.body(node.body, body)
        self.flush(body)
        out.append(ast.While(test=ast.Constant(value=True), body=body,
                             orelse=[]))

    def emit_for(self, node: ast.For, out: List[ast.stmt]) -> None:
        iter_kind = _callee_of(self.spec, node.iter)[0]
        bounds = []
        for bound in node.iter.args:
            new, _, _ = self.expr(bound)  # charged once, before the loop
            bounds.append(new)
        # Flag-gated bound charges (EITHER-kind bound variables) must
        # land before the loop: left pending they would be drained into
        # the body (charged once per iteration) or dropped at an
        # implicit function end.
        self.drain_cond(out)
        per_iter = (Counter({"add": 1, "branch": 1})
                    if iter_kind == "arange" else Counter())
        target = node.target.id
        target_flag = True if iter_kind == "arange" else FLAG_FALSE

        hoisted = self.try_hoist(node, bounds, per_iter, target,
                                 target_flag, out)
        if hoisted:
            return
        # general per-iteration form
        self.flush(out)
        body: List[ast.stmt] = []
        saved, self.pending = self.pending, per_iter.copy()
        self.assign_flag(target, target_flag, body)
        self.body(node.body, body)
        self.flush(body)
        assert not self.pending
        self.pending = saved
        out.append(ast.For(
            target=ast.Name(id=target, ctx=ast.Store()),
            iter=ast.Call(func=ast.Name(id="range", ctx=ast.Load()),
                          args=bounds, keywords=[]),
            body=body or [ast.Pass()], orelse=[]))

    def try_hoist(self, node: ast.For, bounds: List[ast.expr],
                  per_iter: Counter, target: str, target_flag,
                  out: List[ast.stmt]) -> bool:
        """Emit a counted loop as one scaled whole-loop charge when the
        body is straight-line and all its charges are unconditional."""
        for sub in node.body:
            if not isinstance(sub, (ast.Assign, ast.AugAssign, ast.Expr)):
                return False
        saved_pending, self.pending = self.pending, per_iter.copy()
        saved_cond, self.cond = self.cond, []
        body: List[ast.stmt] = []
        try:
            self.assign_flag(target, target_flag, body)
            self.body(node.body, body)
        except Unsupported:
            self.pending, self.cond = saved_pending, saved_cond
            raise
        if self.cond:
            # data-dependent charges: fall back to per-iteration charging
            self.pending, self.cond = saved_pending, saved_cond
            return False
        multiset, self.pending = self.pending, saved_pending
        self.cond = saved_cond

        self.flush(out)
        self.tmp += 1
        rname = f"__r{self.tmp}"
        out.append(ast.Assign(
            targets=[ast.Name(id=rname, ctx=ast.Store())],
            value=ast.Call(func=ast.Name(id="range", ctx=ast.Load()),
                           args=bounds, keywords=[])))
        if multiset:
            bid = self.prog.add_block(multiset)
            out.append(_charge_call("charge_scaled", [
                ast.Constant(value=bid),
                ast.Call(func=ast.Name(id="len", ctx=ast.Load()),
                         args=[ast.Name(id=rname, ctx=ast.Load())],
                         keywords=[])]))
        out.append(ast.For(
            target=ast.Name(id=target, ctx=ast.Store()),
            iter=ast.Name(id=rname, ctx=ast.Load()),
            body=body or [ast.Pass()], orelse=[]))
        return True


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def analyze_program(entry_fn, entry_svs: Tuple[SV, ...]) -> Program:
    """Run the whole-program kind fixpoint, then emit every spec."""
    program = Program(entry_fn)
    program.request_spec(entry_fn, entry_svs, decorated=False, entry=True)
    for _ in range(16):
        program.changed = False
        snapshot = [(dict(s.env), s.ret) for s in program.order]
        for spec in list(program.order):
            Analyzer(program, spec).run()
        if not program.changed and snapshot == [
                (dict(s.env), s.ret) for s in program.order]:
            break
    else:
        raise Unsupported("whole-program kind fixpoint did not converge")

    for spec in program.order:
        if spec.ret.kind == EITHER and not spec.is_entry():
            raise Unsupported(
                f"{spec.fn.__name__}: path-dependent return annotation "
                "kind")
    for spec in program.order:
        Emitter(program, spec).emit_function()
    return program
