"""repro — reproduction of "System-Level Performance Analysis in SystemC".

(H. Posadas, F. Herrera, P. Sánchez, E. Villar, F. Blasco — DATE 2004.)

The package provides, in Python, the paper's system-level timing
estimation library together with every substrate it depends on:

* :mod:`repro.kernel` — SystemC-like discrete-event kernel,
* :mod:`repro.annotate` — operator-overloading time annotation,
* :mod:`repro.platform` — platform resources, mapping and RTOS model,
* :mod:`repro.segments` — process segmentation and tracking,
* :mod:`repro.core` — the performance-analysis library itself,
* :mod:`repro.capture` — capture points and timing metrics,
* :mod:`repro.iss` — OpenRISC-flavoured ISS + mini compiler (reference),
* :mod:`repro.hls` — behavioral-synthesis substrate (HW reference),
* :mod:`repro.calibration` — operator weight characterization,
* :mod:`repro.workloads` — the paper's benchmark set, single-source.

Quickstart::

    from repro import Simulator, Module, SimTime
    from repro.core import PerformanceLibrary
    from repro.platform import PlatformModel

See ``examples/quickstart.py`` for a complete runnable scenario.
"""

from .errors import (
    AnnotationError,
    CalibrationError,
    CaptureError,
    CompileError,
    ElaborationError,
    IssError,
    MappingError,
    ReproError,
    SimulationError,
    SynthesisError,
)
from .kernel import (
    Clock,
    Fifo,
    Mark,
    Module,
    Port,
    Rendezvous,
    SharedVariable,
    Signal,
    SimTime,
    Simulator,
    TraceRecorder,
    wait,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError", "SimulationError", "ElaborationError", "AnnotationError",
    "MappingError", "IssError", "CompileError", "SynthesisError",
    "CaptureError", "CalibrationError",
    # kernel surface
    "Clock", "Fifo", "Mark", "Module", "Port", "Rendezvous",
    "SharedVariable", "Signal", "SimTime", "Simulator", "TraceRecorder",
    "wait",
]
