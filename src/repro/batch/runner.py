"""Runner registry: the executable kinds behind batch configurations.

Each campaign point names a *kind*; :func:`execute_config` looks the
kind up here and calls it with the config's parameters, returning a
JSON-able payload dict (it must survive the result cache and the
worker-process boundary).  Built-in kinds:

``workload``
    One paper benchmark on one backend (``plain`` functional run,
    ``annotated`` estimation, or the ``iss`` reference) — the
    single-source grid the differential tests sweep.

``hw-point``
    One Fig. 4 design point: schedule the FIR segment's dataflow graph
    under a functional-unit allocation, derive the paper's ``k`` for
    that allocation from the segment's Tmin/Tmax bounds, estimate the
    point's energy/power (dynamic operation energy plus area-
    proportional leakage over the scheduled latency), and (optionally)
    run the annotated SW estimate and a strict-timed system simulation
    of the full filter at that design point.

``topology``
    A deterministic process/channel chain built from a plain parameter
    spec; returns the final simulated time plus a digest of the full
    event trace.  This is the probe the determinism test layer uses to
    prove byte-identical behavior across worker processes — the
    invariant the result cache relies on.

``probe``
    Campaign-infrastructure self-test: succeed, fail, sleep, or fail
    until a marker file exists (exercises timeout and retry paths);
    the ``warmth`` behavior counts runs served by the hosting process,
    proving pool reuse across campaigns.

New kinds register with the :func:`register_runner` decorator.

Runners are called once per task by :func:`execute_config`, whether
the task arrived alone or inside a dispatch chunk
(:mod:`repro.batch.pool` streams one outcome per task either way), so
a runner must not assume a fresh process per call: persistent workers
deliberately keep module state warm between tasks and across
campaigns.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional

from .config import BatchError, RunConfig

#: kind -> runner callable taking the params dict.
_RUNNERS: Dict[str, Callable[[dict], dict]] = {}


def register_runner(kind: str):
    """Class-of-work decorator: ``@register_runner("my-kind")``."""

    def decorate(fn: Callable[[dict], dict]):
        if kind in _RUNNERS:
            raise BatchError(f"runner kind {kind!r} already registered")
        _RUNNERS[kind] = fn
        return fn

    return decorate


def runner_kinds() -> List[str]:
    return sorted(_RUNNERS)


def execute_config(config: RunConfig, trace_path: Optional[str] = None) -> dict:
    """Run one configuration in the current process; returns its payload.

    With ``trace_path`` set, every simulator the runner constructs is
    instrumented with a streaming JSONL trace sink (the campaign's
    opt-in per-run artifact, keyed by the run's cache hash); the payload
    gains a ``trace`` entry naming the artifact.
    """
    try:
        runner = _RUNNERS[config.kind]
    except KeyError:
        raise BatchError(
            f"unknown runner kind {config.kind!r}; "
            f"registered: {', '.join(runner_kinds())}"
        )
    if trace_path is None:
        payload = runner(config.params_dict())
    else:
        from ..observe import JsonlSink, ObserveSession

        # Scripts building several simulators get numbered artifacts.
        def sink(index: int, base=trace_path):
            if index == 0:
                return JsonlSink(base)
            return JsonlSink(f"{base}.{index}")

        with ObserveSession(sink_factory=sink) as session:
            try:
                payload = runner(config.params_dict())
            except BaseException:
                # A failed run's JSONL is truncated mid-stream; a later
                # sweep must never read it as a complete trace.  Mark
                # every artifact this run opened as partial.
                for observed in session.observations:
                    observed.recorder.close()
                    abandon = getattr(observed.recorder.sink, "abandon", None)
                    if abandon is not None:
                        abandon()
                raise
        if isinstance(payload, dict):
            artifacts = []
            for observed in session.observations:
                observed.recorder.close()
                path = getattr(observed.recorder.sink, "path", None)
                if path is not None:
                    artifacts.append(str(path))
            # Primary pointer plus the full list, so numbered .1/.2
            # siblings of multi-simulator runs stay visible to sweeps
            # and to `repro cache verify`.
            payload["trace"] = artifacts[0] if artifacts else None
            payload["trace_artifacts"] = artifacts
    if not isinstance(payload, dict):
        raise BatchError(
            f"runner {config.kind!r} returned {type(payload).__name__}, "
            f"expected a payload dict"
        )
    return payload


# -- workload: one benchmark on one backend ------------------------------


def _plain_lists(args) -> list:
    """Post-run state of the mutable (array) arguments."""
    return [list(a) for a in args if isinstance(a, list)]


@register_runner("workload")
def run_workload(params: dict) -> dict:
    """Run one registry workload on one backend.

    Parameters: ``workload`` (registry name), ``backend`` (``plain`` |
    ``annotated`` | ``iss``).  The payload carries the functional result
    and the post-run contents of array arguments so backends can be
    compared point-wise.
    """
    from ..annotate.context import CostContext, MODE_SW, active
    from ..annotate.types import unwrap
    from ..platform import OPENRISC_SW_COSTS
    from ..workloads import registry, wrap_args

    name = params["workload"]
    backend = params.get("backend", "annotated")
    try:
        functions, make_args = registry()[name]
    except KeyError:
        raise BatchError(f"unknown workload {name!r}")
    entry = functions[0]
    args = make_args()

    if backend == "plain":
        result = entry(*args)
        return {"workload": name, "backend": backend,
                "result": unwrap(result), "arrays": _plain_lists(args)}

    if backend == "annotated":
        context = CostContext(OPENRISC_SW_COSTS, MODE_SW)
        wrapped = wrap_args(args)
        with active(context):
            result = entry(*wrapped)
        t_max, t_min = context.segment_totals()
        unwrapped = [unwrap(a) for a in wrapped]
        return {"workload": name, "backend": backend,
                "result": unwrap(result),
                "arrays": [a for a in unwrapped if isinstance(a, list)],
                "cycles_max": t_max, "cycles_min": t_min}

    if backend == "iss":
        from ..iss import run_compiled
        measured = run_compiled(list(functions), args=args, entry=entry)
        return {"workload": name, "backend": backend,
                "result": measured.return_value,
                "arrays": _plain_lists(args),
                "cycles": measured.cycles,
                "instructions": measured.instructions}

    raise BatchError(f"unknown workload backend {backend!r}")


# -- hw-point: one Fig. 4 design-space point -----------------------------


def _fir_segment_args(taps: int):
    from ..annotate.types import AArray
    from ..workloads.fir import _lowpass_taps

    x = AArray([(i * 17 + 3) % 128 - 64 for i in range(taps)])
    h = AArray(_lowpass_taps(taps))
    return (x, h, taps)


#: Leakage + clock-tree power per relative area unit (mW).  With the
#: dynamic operation energy fixed by the segment's computation, this is
#: what turns the power axis into a real trade-off: more functional
#: units finish sooner but leak more while they run.
LEAKAGE_MW_PER_AREA = 0.05


@register_runner("hw-point")
def run_hw_point(params: dict) -> dict:
    """Evaluate one functional-unit allocation of the FIR segment.

    Parameters: ``allocation`` ({fu-class: units}), ``taps`` (segment
    size, default 12), ``evaluate_system`` (bool; also run the annotated
    SW estimate of the full filter and a strict-timed simulation of the
    pipeline at this design point), ``samples`` (filter length for the
    system evaluation, default 256).

    The payload carries the three objective axes the DSE layer ranks:
    estimated time (``latency_ns``), power (``power_mw`` — dynamic
    operation energy plus :data:`LEAKAGE_MW_PER_AREA` leakage
    integrated over the scheduled latency) and cost (``area``).
    """
    from .. import Simulator, wait
    from ..annotate.context import CostContext, MODE_HW, active
    from ..hls import Allocation, capture_dfg, list_schedule
    from ..kernel import Clock
    from ..platform import ASIC_HW_COSTS, HW_CLOCK_MHZ
    from ..power import HW_ENERGY, PowerBudget
    from ..workloads.fir import fir_sample

    allocation_map = {str(k): int(v) for k, v in params["allocation"].items()}
    taps = int(params.get("taps", 12))
    clock = Clock.from_frequency_mhz(float(params.get("clock_mhz",
                                                      HW_CLOCK_MHZ)))

    graph = capture_dfg(fir_sample, _fir_segment_args(taps), ASIC_HW_COSTS)
    allocation = Allocation.of(allocation_map)
    schedule = list_schedule(graph, allocation.as_dict())
    latency = schedule.makespan

    context = CostContext(ASIC_HW_COSTS, MODE_HW)
    with active(context):
        fir_sample(*_fir_segment_args(taps))
    t_max, t_min = context.segment_totals()
    spread = (t_max - t_min) or 1.0
    k = min(1.0, max(0.0, (latency - t_min) / spread))

    latency_ns = clock.cycles_to_time(latency).to_ns()
    dynamic_pj = HW_ENERGY.energy_pj(context.lifetime_op_counts)
    leakage = PowerBudget(static_mw=LEAKAGE_MW_PER_AREA * allocation.area)
    static_pj = leakage.static_energy_pj(
        clock.cycles_to_time(latency).femtoseconds)
    energy_pj = dynamic_pj + static_pj

    payload = {
        "allocation": allocation_map,
        "area": allocation.area,
        "latency_cycles": latency,
        "latency_ns": latency_ns,
        "t_min_cycles": t_min,
        "t_max_cycles": t_max,
        "k": k,
        "dynamic_energy_pj": dynamic_pj,
        "static_energy_pj": static_pj,
        "energy_pj": energy_pj,
        # pJ / ns == mW: average power over the segment's schedule.
        "power_mw": energy_pj / latency_ns if latency_ns else 0.0,
    }
    if not params.get("evaluate_system", False):
        return payload

    # System-level view of the point: the annotated SW estimate of the
    # full filter (what a CPU mapping would cost) ...
    from ..platform import OPENRISC_SW_COSTS
    from ..workloads.common import run_annotated
    from ..workloads.fir import fir_filter, make_fir_inputs

    samples = int(params.get("samples", 256))
    _result, sw_cycles, _sw_min = run_annotated(
        fir_filter, make_fir_inputs(samples, taps), OPENRISC_SW_COSTS)
    payload["sw_cycles"] = sw_cycles

    # ... and a strict-timed simulation of the sample pipeline with the
    # HW segment pinned at this allocation's scheduled latency.
    simulator = Simulator()
    source = simulator.fifo("source", capacity=4)
    sink = simulator.fifo("sink", capacity=4)
    top = simulator.module("top")
    latency_time = clock.cycles_to_time(latency)

    def producer():
        for i in range(samples):
            yield from source.write((i * 29 + 11) % 256)

    def fir_hw():
        for _ in range(samples):
            value = yield from source.read()
            yield wait(latency_time)
            yield from sink.write(value)

    def consumer():
        total = 0
        for _ in range(samples):
            total += yield from sink.read()

    top.add_process(producer, name="producer")
    top.add_process(fir_hw, name="fir")
    top.add_process(consumer, name="consumer")
    final = simulator.run()
    payload["system_end_ns"] = final.to_ns()
    payload["system_end_fs"] = final.femtoseconds
    return payload


# -- topology: deterministic chain for the determinism test layer --------


@register_runner("topology")
def run_topology(params: dict) -> dict:
    """Build and run a producer/transform/consumer fifo chain.

    Parameters: ``stages`` (number of transform processes), ``messages``,
    ``capacities`` (per-fifo, cycled), ``waits_ns`` (per-stage delay per
    message, cycled; 0 means no wait), ``seed`` (payload values).
    Returns the final simulated time and a sha256 digest over the full
    event trace — byte-identical traces are the determinism criterion.
    """
    from .. import SimTime, Simulator, wait
    from ..workloads.common import lcg_stream

    stages = int(params.get("stages", 1))
    messages = int(params.get("messages", 4))
    capacities = [int(c) for c in params.get("capacities", [1])] or [1]
    waits_ns = [int(w) for w in params.get("waits_ns", [0])] or [0]
    seed = int(params.get("seed", 1))
    if stages < 0 or messages <= 0:
        raise BatchError("topology needs stages >= 0 and messages > 0")

    simulator = Simulator(trace=True)
    fifos = [simulator.fifo(f"ch{i}",
                            capacity=capacities[i % len(capacities)])
             for i in range(stages + 1)]
    top = simulator.module("top")
    values = lcg_stream(seed, messages, 1 << 16)

    def producer():
        for value in values:
            yield from fifos[0].write(value)

    def transform(index):
        delay_ns = waits_ns[index % len(waits_ns)]

        def body():
            for _ in range(messages):
                value = yield from fifos[index].read()
                if delay_ns:
                    yield wait(SimTime.ns(delay_ns))
                yield from fifos[index + 1].write((value * 3 + index) & 0xFFFF)

        return body

    def consumer():
        checksum = 0
        for _ in range(messages):
            value = yield from fifos[stages].read()
            checksum = (checksum * 31 + value) & 0xFFFFFFFF
        results["checksum"] = checksum

    results: dict = {}
    top.add_process(producer, name="producer")
    for index in range(stages):
        top.add_process(transform(index), name=f"stage{index}")
    top.add_process(consumer, name="consumer")
    final = simulator.run()
    simulator.assert_quiescent()

    trace_text = "\n".join(str(r) for r in simulator.trace.records)
    return {
        "final_fs": final.femtoseconds,
        "checksum": results["checksum"],
        "records": len(simulator.trace.records),
        "trace_sha256": hashlib.sha256(trace_text.encode("ascii")).hexdigest(),
    }


# -- probe: infrastructure self-test kinds -------------------------------


#: Runs served by *this* process across every campaign it worked for.
#: Meaningful only inside persistent workers — see ``warmth`` below.
_WARMTH_SERVED = 0


@register_runner("probe")
def run_probe(params: dict) -> dict:
    """Deterministic success/failure/sleep probe for the campaign pool.

    Parameters: ``behavior`` = ``ok`` | ``warmth`` | ``fail`` |
    ``sleep`` | ``fail-until-marker`` | ``die`` | ``slow-then-ok`` |
    ``corrupt-cache`` (+ ``marker`` path, ``seconds`` for the sleeping
    behaviors, ``value`` echoed back).

    The last three are the fault-injection harness's worker half;
    their behavior strings are defined by the shared fault taxonomy
    (:mod:`repro.inject.vocabulary`: ``worker-death``, ``worker-stall``,
    ``cache-foreign-corrupt``), and successful runs tag their payload
    with the taxonomy ``fault`` name:

    ``die``
        Hard-exit the worker process mid-run (no exception, no result
        message) — the parent sees pipe EOF and must replace the
        worker.  With a ``marker`` path the probe dies only while the
        marker is absent (writing it first), so a retry succeeds.
    ``slow-then-ok``
        Sleep ``seconds`` on the first attempt (writing ``marker``),
        return instantly once the marker exists — drives the
        timeout → kill → replace → retry path deterministically.
    ``corrupt-cache``
        Succeed, but first trash the cache entry at (``cache_root``,
        ``key``) with non-JSON garbage — a foreign writer sharing the
        cache directory, which integrity validation must absorb.
    """
    import os
    import time

    from ..inject.vocabulary import (
        CACHE_FOREIGN_CORRUPT, WORKER_DEATH, WORKER_STALL,
    )

    behavior = params.get("behavior", "ok")
    if behavior == "ok":
        return {"value": params.get("value", 0), "pid": os.getpid()}
    if behavior == "warmth":
        # Per-process served-run counter: two campaigns that share a
        # warm pool see the counter keep climbing, which pids alone
        # cannot prove (the OS may reuse them).  The payload differs
        # per call by design — warmth probes are pool-lifecycle
        # diagnostics and must never be cached.
        global _WARMTH_SERVED
        _WARMTH_SERVED += 1
        return {"value": params.get("value", 0), "pid": os.getpid(),
                "served": _WARMTH_SERVED}
    if behavior == "sleep":
        time.sleep(float(params.get("seconds", 1.0)))
        return {"value": params.get("value", 0), "pid": os.getpid()}
    if behavior == "fail":
        raise RuntimeError("probe asked to fail")
    if behavior == "fail-until-marker":
        marker = params["marker"]
        if not os.path.exists(marker):
            with open(marker, "w", encoding="ascii") as handle:
                handle.write("attempted\n")
            raise RuntimeError("probe failing on first attempt")
        return {"value": params.get("value", 0), "pid": os.getpid()}
    if behavior == WORKER_DEATH.probe_behavior:
        marker = params.get("marker")
        if marker and os.path.exists(marker):
            return {"value": params.get("value", 0), "pid": os.getpid(),
                    "fault": WORKER_DEATH.name}
        if marker:
            with open(marker, "w", encoding="ascii") as handle:
                handle.write("died\n")
        os._exit(int(params.get("exit_code", 3)))
    if behavior == WORKER_STALL.probe_behavior:
        marker = params["marker"]
        if not os.path.exists(marker):
            with open(marker, "w", encoding="ascii") as handle:
                handle.write("slow\n")
            time.sleep(float(params.get("seconds", 60.0)))
        return {"value": params.get("value", 0), "pid": os.getpid(),
                "fault": WORKER_STALL.name}
    if behavior == CACHE_FOREIGN_CORRUPT.probe_behavior:
        from .cache import ResultCache

        target = ResultCache(params["cache_root"]).path_for(params["key"])
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text("{ corrupted by foreign writer", encoding="utf-8")
        return {"value": params.get("value", 0), "pid": os.getpid(),
                "corrupted": params["key"], "fault": CACHE_FOREIGN_CORRUPT.name}
    raise BatchError(f"unknown probe behavior {behavior!r}")


# -- model-level fault injection (repro.inject) ---------------------------


@register_runner("inject")
def run_inject(params: dict) -> dict:
    """One run of the injectable reference scenario (:mod:`repro.inject`).

    The fault-free golden (``injection`` absent/None) and every
    injected run of a dependability sweep go through this kind; the
    body import is deferred so that freshly spawned workers register
    the kind without paying for (or cyclically importing) the inject
    stack until a run actually executes.
    """
    from ..inject.scenario import run_scenario

    return run_scenario(params)


@register_runner("faultload")
def run_faultload(params: dict) -> dict:
    """Expand a faultload in the worker and return its canonical form.

    Exists for the determinism property layer: generating the same
    ``(spec, seed)`` in a freshly spawned interpreter must produce a
    byte-identical schedule (and hash) to the parent process.
    """
    from ..inject.faultload import FaultSpec, generate_faultload

    spec = FaultSpec.from_dict(params["spec"])
    load = generate_faultload(spec, int(params["seed"]))
    return {"hash": load.hash(), "faultload": load.as_dict()}
