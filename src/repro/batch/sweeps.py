"""Pre-built campaign sweeps over the paper's design spaces.

These helpers turn a design space into the flat list of
:class:`~repro.batch.config.RunConfig` points a :class:`Campaign`
fans out — the Fig. 4 functional-unit allocation sweep and the
workload × backend grid behind the single-source claim.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence

from .config import RunConfig

#: Backends of the single-source grid (Table 1's three views of a kernel).
WORKLOAD_BACKENDS = ("plain", "annotated", "iss")


def fig4_sweep_configs(max_units_per_class: int = 3,
                       taps: int = 12,
                       evaluate_system: bool = False,
                       samples: int = 256) -> List[RunConfig]:
    """One ``hw-point`` config per functional-unit allocation.

    Mirrors :func:`repro.hls.explore_design_space`: every combination of
    1..``max_units_per_class`` units for each FU class the FIR segment
    uses.  With ``evaluate_system`` the points also carry the annotated
    SW estimate and a strict-timed pipeline simulation (the CLI's
    system-level sweep); without it they reduce to the schedule-only
    points the Fig. 4 benchmark plots.
    """
    from ..annotate.types import AArray
    from ..hls import capture_dfg, required_classes
    from ..platform import ASIC_HW_COSTS
    from ..workloads.fir import _lowpass_taps, fir_sample

    x = AArray([(i * 17 + 3) % 128 - 64 for i in range(taps)])
    h = AArray(_lowpass_taps(taps))
    graph = capture_dfg(fir_sample, (x, h, taps), ASIC_HW_COSTS)
    classes = required_classes(graph)

    configs = []
    ranges = [range(1, max_units_per_class + 1)] * len(classes)
    for combo in itertools.product(*ranges):
        allocation = dict(zip(classes, combo))
        label = ",".join(f"{count}x{fu}"
                         for fu, count in sorted(allocation.items()))
        configs.append(RunConfig.of(
            "hw-point", name=f"fir[{label}]",
            allocation=allocation, taps=taps,
            evaluate_system=evaluate_system, samples=samples))
    return configs


def workload_sweep_configs(
        workloads: Optional[Sequence[str]] = None,
        backends: Sequence[str] = WORKLOAD_BACKENDS) -> List[RunConfig]:
    """The workload × backend grid as ``workload`` configs."""
    from ..workloads import registry

    names = list(workloads) if workloads else sorted(registry())
    return [
        RunConfig.of("workload", name=f"{name}/{backend}",
                     workload=name, backend=backend)
        for name in names for backend in backends
    ]
