"""Parallel batch-simulation subsystem (design-space campaigns).

The paper's payoff is fast design-space exploration: strict-timed
simulation is orders of magnitude faster than the ISS precisely so that
*many* HW/SW mappings can be evaluated.  This package supplies the
batch orchestrator for that workflow:

* :class:`Campaign` — fan a list of :class:`RunConfig` simulation
  points out over a pool of worker processes with per-run timeout and
  bounded retry, collecting structured :class:`RunResult` records,
* :class:`WorkerPool` — persistent warm worker processes shared across
  campaigns (DSE generations, injection sweeps) with batched, chunked
  task dispatch (:mod:`~repro.batch.pool`),
* :class:`ResultCache` — content-addressed cache so re-running a sweep
  only simulates changed points,
* :class:`CacheManifest` — journal + snapshot index of the cache so
  stats/verify/gc scale with changes, not entries
  (:mod:`~repro.batch.manifest`),
* :class:`CampaignObserver` / :class:`CampaignMetrics` — passive
  progress and metrics hooks in the kernel's observer idiom,
* :mod:`~repro.batch.sweeps` — ready-made sweeps (Fig. 4 allocations,
  workload × backend grid),
* :mod:`~repro.batch.runner` — the registry of executable run kinds,
* :mod:`~repro.batch.maintenance` — cache/artifact integrity sweeps
  (``repro cache stats|verify|gc``),
* :mod:`~repro.batch.faults` — deterministic fault injection for the
  cache layer (the worker half lives in the ``probe`` runner kinds).

The correctness of the whole scheme rests on simulation determinism —
identical configurations must produce byte-identical results in any
process — which ``tests/test_determinism_props.py`` establishes as a
tested invariant.
"""

from .cache import (
    CACHE_SCHEMA_VERSION,
    DEFAULT_CACHE_DIR,
    ResultCache,
    payload_checksum,
    validate_entry,
)
from .faults import CacheFault, FaultingCache, corrupt_entry_file
from .manifest import CacheManifest, ManifestDrift, artifact_paths
from .maintenance import (
    CacheStats,
    GcReport,
    PARTIAL_SUFFIX,
    VerifyReport,
    cache_stats,
    gc_cache,
    index_entries,
    verify_cache,
)
from .pool import WorkerPool, chunk_size
from .campaign import (
    Campaign,
    CampaignMetrics,
    CampaignObserver,
    ProgressObserver,
    RunResult,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    default_workers,
    resolve_start_method,
)
from .config import BatchError, RunConfig
from .runner import execute_config, register_runner, runner_kinds
from .sweeps import (
    WORKLOAD_BACKENDS,
    fig4_sweep_configs,
    workload_sweep_configs,
)

__all__ = [
    "BatchError", "CACHE_SCHEMA_VERSION", "CacheFault", "CacheManifest",
    "CacheStats", "Campaign", "CampaignMetrics", "CampaignObserver",
    "DEFAULT_CACHE_DIR", "FaultingCache", "GcReport", "ManifestDrift",
    "PARTIAL_SUFFIX", "ProgressObserver", "ResultCache", "RunConfig",
    "RunResult", "STATUS_FAILED", "STATUS_OK", "STATUS_TIMEOUT",
    "VerifyReport", "WORKLOAD_BACKENDS", "WorkerPool", "artifact_paths",
    "cache_stats", "chunk_size", "corrupt_entry_file", "default_workers",
    "execute_config", "fig4_sweep_configs", "gc_cache", "index_entries",
    "payload_checksum", "register_runner", "resolve_start_method",
    "runner_kinds", "validate_entry", "verify_cache",
    "workload_sweep_configs",
]
