"""Manifest-backed cache index: journal + compacted snapshot.

The maintenance sweeps in :mod:`repro.batch.maintenance` historically
discovered cache entries by globbing every ``??/*.json`` file and
re-reading each one — O(entries) stat+read+checksum work for *every*
``repro cache stats`` call, even when nothing changed.  This module
maintains a persistent index next to the entries so the common
operations scale with what changed, not with what exists:

* ``manifest.jsonl`` — an append-only journal.  Every
  :meth:`ResultCache.put`, invalidating ``remove`` and ``clear``
  appends one self-checksummed JSON record (the ``sum`` field is a
  truncated SHA-256 over the canonical record body).  A crash mid-append
  leaves at worst one torn tail line, which the loader silently drops —
  the entry file itself was already durably published first, so a
  dropped journal line is *drift*, never corruption, and the
  ``--rescan`` path reconciles it.
* ``manifest-snapshot.json`` — a compacted snapshot rewritten
  atomically (tempfile + fsync + :func:`os.replace`) whenever the
  journal outgrows :data:`COMPACT_JOURNAL_BYTES`.  Its first line is a
  header whose truncated SHA-256 covers the raw body bytes, so loading
  validates at hash speed without re-encoding the entries.  Loading is
  snapshot + journal replay.

Durability model: entry files are the truth and are fsync-ed by
``ResultCache.put``; journal appends are flushed but *not* fsync-ed
(one fsync per put would halve put throughput for a file that is
reconstructible).  A machine crash can therefore lose recent journal
lines — exactly the drift :meth:`CacheManifest.reconcile` repairs.

Put records for the same key merge order-independently: the replay
keeps the record with the greatest ``(created_at, mtime_ns, checksum)``
rank, so any interleaving of concurrent writers compacts to the same
snapshot (property-tested with hypothesis).

Multi-process safety uses ``fcntl.flock`` on the journal file when
available (exclusive for append/compact, shared for load); on platforms
without ``fcntl`` the manifest degrades to lock-free appends, which the
torn-line tolerance and rescan path already absorb.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import tempfile
from typing import Dict, Iterable, List, Optional

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

#: Journal file name under the cache root.
MANIFEST_JOURNAL = "manifest.jsonl"

#: Compacted-snapshot file name under the cache root.
MANIFEST_SNAPSHOT = "manifest-snapshot.json"

#: Version of the manifest record/snapshot layout.
MANIFEST_SCHEMA_VERSION = 1

#: Journal size (bytes) beyond which an append triggers compaction.
COMPACT_JOURNAL_BYTES = 256 * 1024

#: Fields a ``put`` record carries per entry (mirrors the stat + meta
#: facts a directory scan would recover for a valid entry).
ENTRY_FIELDS = ("size", "mtime_ns", "created_at", "describe", "checksum",
                "valid", "problem", "artifacts")


def artifact_paths(payload: dict) -> List[str]:
    """Every trace-artifact path a payload records.

    Understands both the full ``trace_artifacts`` list and the legacy
    single ``trace`` pointer; a payload traced to no artifacts (or an
    untraced payload) yields an empty list.
    """
    artifacts = payload.get("trace_artifacts")
    if isinstance(artifacts, list):
        return [str(a) for a in artifacts if a]
    trace = payload.get("trace")
    return [str(trace)] if trace else []


def _checksum(body) -> str:
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def _lock(handle, exclusive: bool) -> None:
    if fcntl is not None:
        fcntl.flock(handle.fileno(),
                    fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH)


def _unlock(handle) -> None:
    if fcntl is not None:
        fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


def parse_line(line: str) -> Optional[dict]:
    """Parse one journal line; None for blank, torn or tampered lines."""
    line = line.strip()
    if not line:
        return None
    try:
        record = json.loads(line)
    except ValueError:
        return None
    if not isinstance(record, dict):
        return None
    stated = record.pop("sum", None)
    if stated != _checksum(record):
        return None
    return record


def _rank(entry: dict):
    return (entry.get("created_at", 0.0), entry.get("mtime_ns", 0),
            str(entry.get("checksum", "")))


def apply_record(state: Dict[str, dict], record: dict) -> None:
    """Fold one journal record into ``state`` (key -> entry facts).

    ``put`` records for the same key commute: whatever order they
    replay in, the greatest ``(created_at, mtime_ns, checksum)`` wins,
    so concurrent writers always compact to the same snapshot.
    """
    op = record.get("op")
    if op == "put":
        key = record.get("key")
        if not isinstance(key, str):
            return
        entry = {name: record.get(name) for name in ENTRY_FIELDS}
        current = state.get(key)
        if current is None or _rank(entry) >= _rank(current):
            state[key] = entry
    elif op == "remove":
        state.pop(record.get("key"), None)
    elif op == "clear":
        state.clear()


def snapshot_bytes(state: Dict[str, dict]) -> bytes:
    """Canonical snapshot serialization (deterministic for any state).

    Line 1 is a header carrying the schema version and a truncated
    SHA-256 over the *raw bytes* of everything after it; the rest is
    the compact entries JSON.  Hashing bytes instead of a re-encoded
    canonical form keeps snapshot validation at memory bandwidth — the
    load path is what ``repro cache stats`` pays on every call.
    """
    body = (json.dumps({"entries": {key: state[key] for key in sorted(state)}},
                       sort_keys=True, separators=(",", ":"))
            + "\n").encode("utf-8")
    digest = hashlib.sha256(body).hexdigest()[:12]
    header = json.dumps({"schema": MANIFEST_SCHEMA_VERSION, "sum": digest},
                        sort_keys=True, separators=(",", ":")) + "\n"
    return header.encode("utf-8") + body


def entry_from_info(info) -> dict:
    """Manifest entry facts for one scanned :class:`EntryInfo`."""
    return {
        "size": info.size,
        "mtime_ns": info.mtime_ns,
        "created_at": info.created_at,
        "describe": info.describe,
        "checksum": info.checksum,
        "valid": info.valid,
        "problem": info.problem,
        "artifacts": list(info.artifacts),
    }


@dataclasses.dataclass
class ManifestDrift:
    """Disagreement between the manifest and the directory truth."""

    missing: List[str]      # on disk, absent from the manifest
    phantom: List[str]      # in the manifest, gone from disk
    stale: List[str]        # indexed, but size/mtime/checksum diverged

    @property
    def ok(self) -> bool:
        return not (self.missing or self.phantom or self.stale)

    def describe(self) -> str:
        if self.ok:
            return "manifest matches the directory"
        return (f"manifest drift: {len(self.missing)} missing, "
                f"{len(self.phantom)} phantom, {len(self.stale)} stale")


class CacheManifest:
    """The journal + snapshot pair indexing one cache root."""

    def __init__(self, root) -> None:
        self.root = pathlib.Path(root)
        self.journal_path = self.root / MANIFEST_JOURNAL
        self.snapshot_path = self.root / MANIFEST_SNAPSHOT

    def exists(self) -> bool:
        return self.journal_path.exists() or self.snapshot_path.exists()

    # -- reading ------------------------------------------------------------

    def _read_snapshot(self) -> Optional[Dict[str, dict]]:
        try:
            raw = self.snapshot_path.read_bytes()
        except OSError:
            return None
        head, newline, body = raw.partition(b"\n")
        if not newline:
            return None
        try:
            header = json.loads(head)
        except ValueError:
            return None
        if not isinstance(header, dict):
            return None
        if header.get("schema") != MANIFEST_SCHEMA_VERSION:
            return None
        if header.get("sum") != hashlib.sha256(body).hexdigest()[:12]:
            return None
        try:
            payload = json.loads(body)
        except ValueError:
            return None
        entries = payload.get("entries") if isinstance(payload, dict) else None
        if not isinstance(entries, dict):
            return None
        return {key: entry for key, entry in entries.items()
                if isinstance(entry, dict)}

    def load(self) -> Dict[str, dict]:
        """Snapshot + journal replay; torn/invalid lines are dropped."""
        state = self._read_snapshot() or {}
        lines: List[str] = []
        if self.journal_path.exists():
            try:
                with open(self.journal_path, "r",
                          encoding="utf-8") as handle:
                    _lock(handle, exclusive=False)
                    try:
                        lines = handle.read().splitlines()
                    finally:
                        _unlock(handle)
            except OSError:
                lines = []
        for line in lines:
            record = parse_line(line)
            if record is not None:
                apply_record(state, record)
        return state

    # -- journaling ---------------------------------------------------------

    def _append(self, record: dict) -> None:
        record = dict(record)
        record["sum"] = _checksum(record)
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.journal_path, "a", encoding="utf-8") as handle:
            _lock(handle, exclusive=True)
            try:
                handle.write(line)
                handle.flush()
                if handle.tell() > COMPACT_JOURNAL_BYTES:
                    self._compact_locked(handle)
            finally:
                _unlock(handle)

    def record_put(self, key: str, *, size: int, mtime_ns: int,
                   created_at: float, describe: str, checksum: str,
                   artifacts: Iterable[str], valid: bool = True,
                   problem: str = "") -> None:
        self._append({
            "op": "put", "key": key, "size": int(size),
            "mtime_ns": int(mtime_ns), "created_at": float(created_at),
            "describe": str(describe), "checksum": str(checksum),
            "valid": bool(valid), "problem": str(problem),
            "artifacts": list(artifacts),
        })

    def record_remove(self, key: str) -> None:
        self._append({"op": "remove", "key": key})

    def record_clear(self) -> None:
        self._append({"op": "clear"})

    # -- compaction / rebuild -----------------------------------------------

    def _write_snapshot(self, state: Dict[str, dict]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        body = snapshot_bytes(state)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-manifest-", suffix=".json")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(body)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, self.snapshot_path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def _compact_locked(self, handle) -> None:
        """Fold the journal into the snapshot; caller holds the lock."""
        state = self._read_snapshot() or {}
        try:
            with open(self.journal_path, "r", encoding="utf-8") as reader:
                lines = reader.read().splitlines()
        except OSError:
            lines = []
        for line in lines:
            record = parse_line(line)
            if record is not None:
                apply_record(state, record)
        self._write_snapshot(state)
        handle.truncate(0)

    def compact(self) -> None:
        """Fold the journal into the snapshot now."""
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.journal_path, "a", encoding="utf-8") as handle:
            _lock(handle, exclusive=True)
            try:
                self._compact_locked(handle)
            finally:
                _unlock(handle)

    def replace(self, state: Dict[str, dict]) -> None:
        """Overwrite the manifest wholesale with ``state`` (rebuild)."""
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.journal_path, "a", encoding="utf-8") as handle:
            _lock(handle, exclusive=True)
            try:
                self._write_snapshot(state)
                handle.truncate(0)
            finally:
                _unlock(handle)

    def reconcile(self, infos) -> ManifestDrift:
        """Rebuild from a directory scan and report how far off we were.

        ``infos`` is the :func:`~repro.batch.maintenance.scan_entries`
        truth.  The manifest is replaced with it; the returned drift
        names every key the old manifest had lost (``missing``),
        invented (``phantom``) or mis-described (``stale``).
        """
        current = self.load()
        truth = {info.key: entry_from_info(info) for info in infos}
        missing = sorted(key for key in truth if key not in current)
        phantom = sorted(key for key in current if key not in truth)
        stale = []
        for key in sorted(truth):
            old = current.get(key)
            if old is None:
                continue
            facts = ("size", "mtime_ns", "checksum", "valid")
            if any(old.get(name) != truth[key].get(name) for name in facts):
                stale.append(key)
        self.replace(truth)
        return ManifestDrift(missing=missing, phantom=phantom, stale=stale)


__all__ = [
    "CacheManifest", "ManifestDrift", "COMPACT_JOURNAL_BYTES",
    "MANIFEST_JOURNAL", "MANIFEST_SCHEMA_VERSION", "MANIFEST_SNAPSHOT",
    "apply_record", "artifact_paths", "entry_from_info", "parse_line",
    "snapshot_bytes",
]
