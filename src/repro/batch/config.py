"""Run configurations and content-addressed cache keys.

A :class:`RunConfig` names one simulation point of a campaign: a
registered runner *kind* plus its parameters (workload id, platform
parameters, annotation mode, ...).  Configurations are immutable,
picklable (they cross process boundaries) and hashable into a stable
content-addressed cache key.

The key covers the runner kind, the canonicalized parameters and the
library version — *not* the display name — so that re-labelling a sweep
point still hits the cache while any change to what is simulated (or to
the library itself) misses it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Mapping, Tuple

from .. import __version__
from ..errors import ReproError


class BatchError(ReproError):
    """Raised for malformed campaign configurations."""


def _canonical(value: Any) -> Any:
    """Normalize ``value`` into a JSON-stable structure.

    Mappings become sorted key/value lists, tuples become lists; only
    scalars survive as leaves so two configs that mean the same thing
    serialize identically.
    """
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    raise BatchError(
        f"config parameter {value!r} of type {type(value).__name__} is not "
        f"cache-keyable; use scalars, lists or mappings"
    )


#: Tag distinguishing a frozen mapping from a frozen list of pairs.
_MAP_TAG = "__map__"


def _freeze(value: Any) -> Any:
    """Immutable (hashable) mirror of :func:`_canonical`."""
    if isinstance(value, Mapping):
        return (_MAP_TAG,) + tuple(
            (str(k), _freeze(v)) for k, v in sorted(value.items())
        )
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


@dataclasses.dataclass(frozen=True)
class RunConfig:
    """One point of a batch campaign.

    ``kind`` selects a registered runner (see :mod:`repro.batch.runner`),
    ``name`` is a human label for progress output, and ``params`` holds
    the runner's keyword parameters in frozen canonical form.
    """

    kind: str
    name: str
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def of(cls, kind: str, name: str = "", **params: Any) -> "RunConfig":
        _canonical(params)  # validate early, at construction site
        frozen = tuple((key, _freeze(value))
                       for key, value in sorted(params.items()))
        return cls(kind, name or kind, frozen)

    def params_dict(self) -> dict:
        return {key: _thaw(value) for key, value in self.params}

    def key_material(self) -> str:
        """Canonical JSON string the cache key is derived from."""
        body = {
            "kind": self.kind,
            "params": _canonical(self.params_dict()),
            "version": __version__,
        }
        return json.dumps(body, sort_keys=True, separators=(",", ":"))

    def cache_key(self) -> str:
        """Stable content-addressed key (sha256 hex digest)."""
        return hashlib.sha256(self.key_material().encode("utf-8")).hexdigest()

    def __str__(self) -> str:
        return f"{self.kind}:{self.name}"


def _thaw(value: Any) -> Any:
    """Undo :func:`_freeze`: tagged tuples become dicts, tuples lists."""
    if isinstance(value, tuple):
        if value and value[0] == _MAP_TAG:
            return {key: _thaw(inner) for key, inner in value[1:]}
        return [_thaw(item) for item in value]
    return value
