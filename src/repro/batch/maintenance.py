"""Cache/artifact maintenance: the machinery behind ``repro cache``.

A long-lived campaign cache accumulates three kinds of rot: entries
invalidated by corruption or schema drift, trace artifacts whose cache
entry was pruned (orphans), and ``.partial`` files left by runs that
failed mid-trace.  This module sweeps the cache directory and the
per-run trace-artifact directory *in lockstep* so retention of the two
never diverges — the ROADMAP failure mode where a sweep reports a
``trace`` path that no longer exists.

Three operations, mirrored 1:1 by the CLI:

* :func:`cache_stats`   — inventory: entries, bytes, ages, artifacts;
* :func:`verify_cache`  — full integrity pass: every entry re-checked
  with the same rules a live :meth:`ResultCache.get` applies, every
  recorded ``trace`` pointer checked on disk, orphan and partial
  artifacts reported;
* :func:`gc_cache`      — retention: drop entries older than a cutoff
  and/or beyond a keep-newest budget, deleting their artifacts with
  them, and sweep orphans/partials.

All three take a ``rescan`` flag.  ``rescan=True`` (the library
default, and ``repro cache ... --rescan``) walks the directory the
historical way and — as a side effect — rebuilds the manifest from
what it found, reporting the drift.  ``rescan=False`` (the CLI
default) goes through :func:`index_entries`, which answers from the
:class:`~repro.batch.manifest.CacheManifest` and only re-reads entries
whose size/mtime changed — O(changed) instead of O(entries).
"""

from __future__ import annotations

import dataclasses
import pathlib
import re
import time
from typing import Dict, List, Optional, Tuple, Union

from ..observe.sinks import PARTIAL_SUFFIX
from .cache import ResultCache, validate_entry
from .manifest import ManifestDrift, artifact_paths, entry_from_info

#: ``<64-hex-key>.jsonl`` with an optional ``.N`` sibling index.
_ARTIFACT_RE = re.compile(r"^([0-9a-f]{64})\.jsonl(?:\.\d+)?$")


@dataclasses.dataclass
class EntryInfo:
    """One on-disk cache entry, validated."""

    key: str
    path: pathlib.Path
    size: int
    created_at: float            # meta timestamp, else file mtime
    describe: str
    valid: bool
    problem: str                 # why invalid ("" when valid)
    artifacts: List[str]         # trace paths the payload records
    mtime_ns: int = 0            # stat mtime, for manifest staleness
    checksum: str = ""           # payload checksum ("" when invalid)


def _scan_one(path: pathlib.Path) -> Optional[EntryInfo]:
    """Read and validate one on-disk entry (None if it vanished)."""
    import json

    key = path.stem
    try:
        stat = path.stat()
    except OSError:
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            entry = json.load(handle)
    except (OSError, ValueError) as exc:
        return EntryInfo(key, path, stat.st_size, stat.st_mtime,
                         "", False, f"unreadable: {exc}", [],
                         mtime_ns=stat.st_mtime_ns)
    payload, problem = validate_entry(key, entry)
    meta = entry.get("meta") if isinstance(entry, dict) else None
    created = stat.st_mtime
    checksum = ""
    if isinstance(meta, dict):
        if isinstance(meta.get("created_at"), (int, float)):
            created = float(meta["created_at"])
        if payload is not None and isinstance(meta.get("checksum"), str):
            checksum = meta["checksum"]
    describe = entry.get("describe", "") if isinstance(entry, dict) else ""
    return EntryInfo(
        key, path, stat.st_size, created, str(describe),
        payload is not None, problem,
        artifact_paths(payload) if payload is not None else [],
        mtime_ns=stat.st_mtime_ns, checksum=checksum)


def scan_entries(cache: ResultCache, jobs: int = 1) -> List[EntryInfo]:
    """Read and validate every entry under the cache root.

    ``jobs`` > 1 reads entries through a thread pool — the per-entry
    work is json + checksum over small files, so threads overlap the
    I/O nicely on network filesystems.  The result order is identical
    to the serial scan (sorted by path) whatever ``jobs`` is.
    """
    paths = sorted(cache.root.glob("??/*.json"))
    if jobs > 1 and len(paths) > 1:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=jobs) as pool:
            scanned = list(pool.map(_scan_one, paths))
    else:
        scanned = [_scan_one(path) for path in paths]
    return [info for info in scanned if info is not None]


def index_entries(cache: ResultCache, jobs: int = 1) -> List[EntryInfo]:
    """Entry inventory from the manifest — O(changed), not O(entries).

    Every indexed entry is stat-gated: while the on-disk
    ``(size, mtime_ns)`` still matches the manifest record, its facts
    are trusted without opening the file.  A mismatch re-reads and
    re-validates just that entry (and re-journals the fresh facts); a
    vanished file is dropped and journalled as removed, so the index
    self-heals as it is read.  A cache that predates the manifest is
    migrated transparently: one full :func:`scan_entries` walk, then
    the result becomes the first snapshot.
    """
    manifest = cache.manifest
    if not manifest.exists():
        infos = scan_entries(cache, jobs=jobs)
        try:
            manifest.replace(
                {info.key: entry_from_info(info) for info in infos})
        except OSError:
            pass
        return infos
    state = manifest.load()
    infos: List[EntryInfo] = []
    for key in sorted(state):
        record = state[key]
        path = cache.path_for(key)
        try:
            stat = path.stat()
        except OSError:
            # Phantom: indexed but gone from disk.
            try:
                manifest.record_remove(key)
            except OSError:
                pass
            continue
        size = record.get("size")
        mtime_ns = record.get("mtime_ns")
        if stat.st_size == size and stat.st_mtime_ns == mtime_ns:
            infos.append(EntryInfo(
                key, path, stat.st_size,
                float(record.get("created_at") or stat.st_mtime),
                str(record.get("describe") or ""),
                bool(record.get("valid", True)),
                str(record.get("problem") or ""),
                [str(a) for a in record.get("artifacts") or []],
                mtime_ns=stat.st_mtime_ns,
                checksum=str(record.get("checksum") or "")))
            continue
        info = _scan_one(path)
        if info is None:
            try:
                manifest.record_remove(key)
            except OSError:
                pass
            continue
        try:
            manifest.record_put(
                key, size=info.size, mtime_ns=info.mtime_ns,
                created_at=info.created_at, describe=info.describe,
                checksum=info.checksum, artifacts=info.artifacts,
                valid=info.valid, problem=info.problem)
        except OSError:
            pass
        infos.append(info)
    return infos


@dataclasses.dataclass
class TraceInventory:
    """Keyed view of a trace-artifact directory."""

    by_key: Dict[str, List[pathlib.Path]]
    partial: List[pathlib.Path]      # .partial leftovers of failed runs
    foreign: List[pathlib.Path]      # files not named like keyed artifacts

    @property
    def artifact_count(self) -> int:
        return sum(len(paths) for paths in self.by_key.values())


def scan_trace_dir(
        trace_dir: Union[str, pathlib.Path, None]) -> TraceInventory:
    inventory = TraceInventory({}, [], [])
    if trace_dir is None:
        return inventory
    root = pathlib.Path(trace_dir)
    if not root.is_dir():
        return inventory
    for path in sorted(root.iterdir()):
        if not path.is_file():
            continue
        name = path.name
        if name.endswith(PARTIAL_SUFFIX):
            inventory.partial.append(path)
            continue
        match = _ARTIFACT_RE.match(name)
        if match is None:
            inventory.foreign.append(path)
            continue
        inventory.by_key.setdefault(match.group(1), []).append(path)
    return inventory


# -- stats ----------------------------------------------------------------


@dataclasses.dataclass
class CacheStats:
    root: pathlib.Path
    entries: int
    valid: int
    invalid: int
    bytes: int
    oldest: Optional[float]
    newest: Optional[float]
    trace_dir: Optional[pathlib.Path]
    trace_artifacts: int
    trace_partials: int
    trace_bytes: int

    def describe(self) -> str:
        lines = [f"cache {self.root}: {self.entries} entries "
                 f"({self.valid} valid, {self.invalid} invalid), "
                 f"{self.bytes} bytes"]
        if self.entries and self.oldest is not None:
            age = max(0.0, time.time() - self.oldest)
            lines.append(f"  oldest entry {age / 86400.0:.1f} days old")
        if self.trace_dir is not None:
            lines.append(f"traces {self.trace_dir}: "
                         f"{self.trace_artifacts} artifacts, "
                         f"{self.trace_partials} partial, "
                         f"{self.trace_bytes} bytes")
        return "\n".join(lines)


def cache_stats(cache: ResultCache,
                trace_dir: Union[str, pathlib.Path, None] = None,
                rescan: bool = True) -> CacheStats:
    """Aggregate cache (and optionally trace-dir) statistics.

    With ``rescan`` the numbers come from a full directory walk.
    Without it they are aggregated straight off the manifest records —
    no per-entry ``stat`` and no file opens, so the cost is one index
    load however large the entries are.  The manifest is trusted
    as-is: entries written past the journal (foreign writers, lost
    lines) are invisible here until a ``--rescan`` reconciles them.  A
    cache predating the manifest is migrated via one indexed walk.
    """
    if rescan or not cache.manifest.exists():
        infos = scan_entries(cache) if rescan else index_entries(cache)
        entries = len(infos)
        valid = sum(1 for info in infos if info.valid)
        size = sum(info.size for info in infos)
        created = [info.created_at for info in infos]
    else:
        state = cache.manifest.load()
        entries = len(state)
        valid = sum(1 for record in state.values()
                    if record.get("valid", True))
        size = sum(int(record.get("size") or 0) for record in state.values())
        created = [float(record.get("created_at") or 0.0)
                   for record in state.values()]
    inventory = scan_trace_dir(trace_dir)
    trace_bytes = 0
    for paths in inventory.by_key.values():
        for path in paths:
            try:
                trace_bytes += path.stat().st_size
            except OSError:
                pass
    return CacheStats(
        root=cache.root,
        entries=entries,
        valid=valid,
        invalid=entries - valid,
        bytes=size,
        oldest=min(created) if created else None,
        newest=max(created) if created else None,
        trace_dir=pathlib.Path(trace_dir) if trace_dir is not None else None,
        trace_artifacts=inventory.artifact_count,
        trace_partials=len(inventory.partial),
        trace_bytes=trace_bytes,
    )


# -- verify ---------------------------------------------------------------


@dataclasses.dataclass
class VerifyReport:
    checked: int
    invalid: List[Tuple[str, str]]                 # (key, problem)
    missing_artifacts: List[Tuple[str, str]]       # (key, missing path)
    orphan_artifacts: List[pathlib.Path]           # no cache entry
    partial_artifacts: List[pathlib.Path]          # failed-run leftovers
    drift: Optional[ManifestDrift] = None          # rescan-vs-manifest

    @property
    def ok(self) -> bool:
        """Integrity verdict; manifest drift is reported separately
        (it is repaired by the rescan that found it)."""
        return not (self.invalid or self.missing_artifacts
                    or self.orphan_artifacts or self.partial_artifacts)

    def describe(self) -> str:
        lines = [f"verified {self.checked} cache entries: "
                 f"{len(self.invalid)} invalid"]
        for key, problem in self.invalid:
            lines.append(f"  invalid {key[:12]}…: {problem}")
        for key, path in self.missing_artifacts:
            lines.append(f"  missing artifact of {key[:12]}…: {path}")
        for path in self.orphan_artifacts:
            lines.append(f"  orphan artifact: {path}")
        for path in self.partial_artifacts:
            lines.append(f"  partial artifact: {path}")
        if self.ok:
            lines.append("cache and artifacts are coherent")
        if self.drift is not None:
            lines.append(self.drift.describe())
            for key in self.drift.missing:
                lines.append(f"  unindexed entry: {key[:12]}…")
            for key in self.drift.phantom:
                lines.append(f"  phantom index record: {key[:12]}…")
            for key in self.drift.stale:
                lines.append(f"  stale index record: {key[:12]}…")
        return "\n".join(lines)


def verify_cache(cache: ResultCache,
                 trace_dir: Union[str, pathlib.Path, None] = None,
                 jobs: int = 1, rescan: bool = True) -> VerifyReport:
    """Integrity-check every entry and cross-check the trace dir.

    ``jobs`` parallelises the entry scan (see :func:`scan_entries`);
    the report is identical for any value.  ``rescan=True`` walks the
    directory, rebuilds the manifest from what it found and fills
    :attr:`VerifyReport.drift` with how far off the index was;
    ``rescan=False`` answers from the manifest, re-reading only entries
    whose stat changed since they were journalled.
    """
    if rescan:
        infos = scan_entries(cache, jobs=jobs)
        try:
            drift: Optional[ManifestDrift] = cache.manifest.reconcile(infos)
        except OSError:
            drift = None
    else:
        infos = index_entries(cache, jobs=jobs)
        drift = None
    inventory = scan_trace_dir(trace_dir)
    invalid = [(info.key, info.problem) for info in infos if not info.valid]
    missing: List[Tuple[str, str]] = []
    for info in infos:
        if not info.valid:
            continue
        for artifact in info.artifacts:
            if not pathlib.Path(artifact).exists():
                missing.append((info.key, artifact))
    live_keys = {info.key for info in infos if info.valid}
    orphans = [path for key, paths in sorted(inventory.by_key.items())
               if key not in live_keys for path in paths]
    return VerifyReport(
        checked=len(infos),
        invalid=invalid,
        missing_artifacts=missing,
        orphan_artifacts=orphans,
        partial_artifacts=list(inventory.partial),
        drift=drift,
    )


# -- gc -------------------------------------------------------------------


@dataclasses.dataclass
class GcReport:
    removed_entries: int
    removed_artifacts: int
    removed_partials: int
    kept_entries: int
    dry_run: bool

    def describe(self) -> str:
        verb = "would remove" if self.dry_run else "removed"
        return (f"{verb} {self.removed_entries} entries, "
                f"{self.removed_artifacts} artifacts, "
                f"{self.removed_partials} partial files; "
                f"{self.kept_entries} entries kept")


def _unlink(path: pathlib.Path, dry_run: bool) -> bool:
    if dry_run:
        return True
    try:
        path.unlink()
        return True
    except OSError:
        return False


def gc_cache(cache: ResultCache,
             trace_dir: Union[str, pathlib.Path, None] = None,
             older_than_s: Optional[float] = None,
             keep: Optional[int] = None,
             now: Optional[float] = None,
             dry_run: bool = False,
             rescan: bool = True) -> GcReport:
    """Apply a retention policy to the cache and its trace artifacts.

    ``older_than_s`` drops entries created more than that many seconds
    ago; ``keep`` drops all but the newest N; both combine as a union
    of removals.  Invalid entries are always dropped.  When
    ``trace_dir`` is given, each removed entry's keyed artifacts go
    with it, and orphan/partial artifacts are swept unconditionally —
    cache and artifact retention cannot diverge.  The manifest is
    rebuilt from the survivors after a non-dry run, whichever of the
    directory walk (``rescan=True``) or the manifest
    (:func:`index_entries`, ``rescan=False``) supplied the inventory.
    """
    now = time.time() if now is None else now
    infos = scan_entries(cache) if rescan else index_entries(cache)
    inventory = scan_trace_dir(trace_dir)

    doomed = {info.key for info in infos if not info.valid}
    valid = sorted((info for info in infos if info.valid),
                   key=lambda info: info.created_at, reverse=True)
    if older_than_s is not None:
        doomed.update(info.key for info in valid
                      if now - info.created_at > older_than_s)
    if keep is not None:
        doomed.update(info.key for info in valid[max(0, keep):])

    removed_entries = 0
    removed_keys = set()
    for info in infos:
        if info.key in doomed and _unlink(info.path, dry_run):
            removed_entries += 1
            removed_keys.add(info.key)

    removed_artifacts = 0
    survivors = {info.key for info in infos if info.key not in doomed}
    for key, paths in inventory.by_key.items():
        if key in survivors:
            continue
        for path in paths:
            if _unlink(path, dry_run):
                removed_artifacts += 1

    removed_partials = sum(
        1 for path in inventory.partial if _unlink(path, dry_run))

    if not dry_run:
        # One snapshot rebuild from the survivors keeps the manifest
        # exact after retention, without one journal line per removal.
        try:
            cache.manifest.replace(
                {info.key: entry_from_info(info) for info in infos
                 if info.key not in removed_keys})
        except OSError:
            pass

    return GcReport(
        removed_entries=removed_entries,
        removed_artifacts=removed_artifacts,
        removed_partials=removed_partials,
        kept_entries=len(survivors),
        dry_run=dry_run,
    )


__all__ = [
    "CacheStats", "EntryInfo", "GcReport", "ManifestDrift",
    "PARTIAL_SUFFIX", "TraceInventory", "VerifyReport", "artifact_paths",
    "cache_stats", "gc_cache", "index_entries", "scan_entries",
    "scan_trace_dir", "verify_cache",
]
