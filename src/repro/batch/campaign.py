"""The campaign orchestrator: fan simulation points out across workers.

A :class:`Campaign` takes a list of :class:`~repro.batch.config.RunConfig`
points and executes them either inline (``workers <= 1``) or on a pool
of persistent worker processes connected by pipes.  The pool supports:

* a configurable worker count and start method (``fork``/``spawn``;
  tests pin ``spawn`` via ``REPRO_BATCH_START_METHOD``),
* a per-run timeout — a worker that overruns is killed and replaced,
* bounded retry of failed / timed-out / crashed runs,
* a content-addressed result cache consulted before any work is
  enqueued (see :mod:`repro.batch.cache`),
* passive :class:`CampaignObserver` hooks, mirroring the kernel's
  :class:`~repro.kernel.scheduler.SchedulerObserver` pattern, through
  which progress display and metrics are layered without coupling.

Results come back as structured :class:`RunResult` records in the same
order as the input configurations, whatever order workers finished in.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import multiprocessing.connection
import os
import time
import traceback
from typing import Dict, List, Optional, Sequence, Union

from .cache import ResultCache
from .config import BatchError, RunConfig
from .maintenance import artifact_paths
from .runner import execute_config

#: Environment knob for the default worker start method; the test suite
#: pins this to ``spawn`` so determinism across fresh interpreters is
#: what gets exercised.
START_METHOD_ENV = "REPRO_BATCH_START_METHOD"

#: How often (seconds) the parent polls worker pipes / deadlines.
_POLL_S = 0.05

STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"


@dataclasses.dataclass
class RunResult:
    """Outcome of one campaign point."""

    config: RunConfig
    key: str                       # content-addressed cache key
    status: str                    # ok | failed | timeout
    payload: Optional[dict] = None
    error: str = ""
    attempts: int = 0              # executions performed (0 for cache hits)
    wall_s: float = 0.0            # wall time of the final attempt
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


class CampaignObserver:
    """Passive hook interface; all methods are optional no-ops.

    The same shape as the kernel's ``SchedulerObserver``: metrics and
    progress reporting subscribe without the orchestrator knowing them.
    """

    def on_campaign_start(self, total_runs: int) -> None: ...

    def on_run_started(self, config: RunConfig, attempt: int) -> None: ...

    def on_run_finished(self, result: RunResult) -> None: ...

    def on_cache_hit(self, result: RunResult) -> None: ...

    def on_retry(self, config: RunConfig, attempt: int, error: str) -> None: ...

    def on_trace_invalidated(self, config: RunConfig,
                             missing: List[str]) -> None: ...

    def on_cache_error(self, key: str, operation: str,
                       error: str) -> None: ...

    def on_worker_replaced(self, config: Optional[RunConfig],
                           reason: str) -> None: ...

    def on_campaign_end(self, metrics: "CampaignMetrics") -> None: ...


class CampaignMetrics(CampaignObserver):
    """Counting observer: runs, cache hits, retries, wall time per point."""

    def __init__(self) -> None:
        self.total_runs = 0
        self.completed = 0
        self.failed = 0
        self.cache_hits = 0
        self.retries = 0
        self.trace_reruns = 0        # cache hits re-executed: artifact gone
        self.cache_errors = 0        # cache get/put raised (tolerated)
        self.worker_replacements = 0
        self.run_wall_s: List[float] = []
        self.wall_s = 0.0
        self._started_at = 0.0

    # -- observer callbacks ----------------------------------------------

    def on_campaign_start(self, total_runs: int) -> None:
        self.total_runs = total_runs
        self._started_at = time.perf_counter()

    def on_run_finished(self, result: RunResult) -> None:
        if result.ok:
            self.completed += 1
        else:
            self.failed += 1
        if not result.cached:
            self.run_wall_s.append(result.wall_s)

    def on_cache_hit(self, result: RunResult) -> None:
        self.cache_hits += 1

    def on_retry(self, config: RunConfig, attempt: int, error: str) -> None:
        self.retries += 1

    def on_trace_invalidated(self, config: RunConfig,
                             missing: List[str]) -> None:
        self.trace_reruns += 1

    def on_cache_error(self, key: str, operation: str, error: str) -> None:
        self.cache_errors += 1

    def on_worker_replaced(self, config: Optional[RunConfig],
                           reason: str) -> None:
        self.worker_replacements += 1

    def on_campaign_end(self, metrics: "CampaignMetrics") -> None:
        self.wall_s = time.perf_counter() - self._started_at

    # -- queries ------------------------------------------------------------

    @property
    def mean_run_wall_s(self) -> float:
        if not self.run_wall_s:
            return 0.0
        return sum(self.run_wall_s) / len(self.run_wall_s)

    def summary(self) -> str:
        simulated = len(self.run_wall_s)
        parts = [
            f"{self.completed}/{self.total_runs} runs ok",
            f"{self.cache_hits} cache hits",
            f"{simulated} simulated",
        ]
        if self.failed:
            parts.append(f"{self.failed} failed")
        if self.retries:
            parts.append(f"{self.retries} retries")
        if self.trace_reruns:
            parts.append(f"{self.trace_reruns} trace re-runs")
        if self.cache_errors:
            parts.append(f"{self.cache_errors} cache errors")
        if self.worker_replacements:
            parts.append(f"{self.worker_replacements} workers replaced")
        parts.append(f"wall {self.wall_s:.2f}s")
        if simulated:
            parts.append(f"mean {1e3 * self.mean_run_wall_s:.1f}ms/point")
        return ", ".join(parts)


class ProgressObserver(CampaignObserver):
    """Prints one line per finished run — the CLI's progress display."""

    def __init__(self, stream=None) -> None:
        import sys

        self.stream = stream if stream is not None else sys.stdout
        self._total = 0
        self._done = 0

    def on_campaign_start(self, total_runs: int) -> None:
        self._total = total_runs
        self._done = 0

    def on_run_finished(self, result: RunResult) -> None:
        self._done += 1
        width = len(str(self._total))
        if result.cached:
            detail = "cache"
        elif result.ok:
            detail = f"{1e3 * result.wall_s:.0f}ms"
        else:
            detail = result.status
        retried = f" (attempt {result.attempts})" if result.attempts > 1 else ""
        print(f"[{self._done:{width}d}/{self._total}] "
              f"{result.config.name}: {detail}{retried}",
              file=self.stream)

    def on_retry(self, config: RunConfig, attempt: int, error: str) -> None:
        last_line = error.strip().splitlines()[-1] if error.strip() else error
        print(f"    retrying {config.name} after attempt {attempt}: "
              f"{last_line}", file=self.stream)


def _worker_main(conn) -> None:
    """Worker loop: receive (index, config, attempt, trace), send outcomes."""
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        index, config, attempt, trace_path = message
        started = time.perf_counter()
        try:
            payload = execute_config(config, trace_path=trace_path)
            outcome = (index, STATUS_OK, payload,
                       time.perf_counter() - started)
        except BaseException:
            outcome = (index, STATUS_FAILED, traceback.format_exc(limit=8),
                       time.perf_counter() - started)
        try:
            conn.send(outcome)
        except (BrokenPipeError, OSError):
            break
    conn.close()


class _Worker:
    """Parent-side handle on one worker process."""

    def __init__(self, context) -> None:
        self.conn, child_conn = context.Pipe(duplex=True)
        self.process = context.Process(target=_worker_main,
                                       args=(child_conn,), daemon=True)
        self.process.start()
        child_conn.close()
        self.task: Optional[tuple] = None   # (index, config, attempt)
        self.deadline: Optional[float] = None

    @property
    def busy(self) -> bool:
        return self.task is not None

    def assign(self, task: tuple, timeout_s: Optional[float],
               trace_path: Optional[str]) -> bool:
        """Hand ``task`` to the worker; False if it died before accepting.

        A worker can die between finishing its last run and the next
        assignment (crash, OOM-kill); ``send`` then raises into the
        parent.  That must not take the whole campaign down — report
        the failed hand-off so the caller replaces the worker and
        requeues the task.
        """
        try:
            self.conn.send(task + (trace_path,))
        except (BrokenPipeError, OSError):
            return False
        self.task = task
        self.deadline = (time.perf_counter() + timeout_s
                         if timeout_s is not None else None)
        return True

    def kill(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - last resort
            self.process.kill()
            self.process.join(timeout=5.0)

    def stop(self) -> None:
        """Polite shutdown of an idle worker."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=5.0)
        if self.process.is_alive():
            self.kill()
        else:
            self.conn.close()


def default_workers() -> int:
    return min(4, os.cpu_count() or 1)


def resolve_start_method(start_method: Optional[str] = None) -> str:
    """Explicit argument > ``REPRO_BATCH_START_METHOD`` > platform default."""
    method = start_method or os.environ.get(START_METHOD_ENV)
    if method:
        if method not in multiprocessing.get_all_start_methods():
            raise BatchError(f"start method {method!r} not available here")
        return method
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"


class Campaign:
    """Execute a list of run configurations with caching and fan-out."""

    def __init__(self,
                 configs: Sequence[RunConfig],
                 workers: Optional[int] = None,
                 timeout_s: Optional[float] = None,
                 retries: int = 1,
                 cache: Union[ResultCache, str, os.PathLike, None] = None,
                 start_method: Optional[str] = None,
                 observers: Sequence[CampaignObserver] = (),
                 trace_dir: Union[str, os.PathLike, None] = None) -> None:
        self.configs = list(configs)
        for config in self.configs:
            if not isinstance(config, RunConfig):
                raise BatchError(f"not a RunConfig: {config!r}")
        self.workers = default_workers() if workers is None else int(workers)
        if self.workers < 0:
            raise BatchError("workers must be >= 0")
        self.timeout_s = timeout_s
        if retries < 0:
            raise BatchError("retries must be >= 0")
        self.retries = int(retries)
        if cache is None or isinstance(cache, ResultCache):
            self.cache: Optional[ResultCache] = cache
        else:
            self.cache = ResultCache(cache)
        self.start_method = resolve_start_method(start_method)
        if trace_dir is None:
            self.trace_dir: Optional[str] = None
        else:
            self.trace_dir = os.fspath(trace_dir)
            os.makedirs(self.trace_dir, exist_ok=True)
        self.metrics = CampaignMetrics()
        self._observers: List[CampaignObserver] = [self.metrics]
        self._observers.extend(observers)

    def add_observer(self, observer: CampaignObserver) -> None:
        self._observers.append(observer)

    def _trace_path(self, config: RunConfig) -> Optional[str]:
        """Per-run trace artifact path, keyed by the run's cache hash."""
        if self.trace_dir is None:
            return None
        return os.path.join(self.trace_dir, f"{config.cache_key()}.jsonl")

    def _missing_artifacts(self, payload: dict) -> Optional[List[str]]:
        """Trace pointers a cache hit records but disk no longer has.

        Returns None when the hit is usable as-is; a (possibly empty)
        list of missing paths when the run must be re-executed with
        tracing.  Only meaningful when this campaign wants artifacts
        (``trace_dir`` set): a payload cached by an untraced campaign
        has no ``trace`` entry at all and must be re-traced, and a
        payload whose recorded artifacts were pruned (retention
        divergence, manual deletion) must be regenerated rather than
        reported with dangling pointers.
        """
        if self.trace_dir is None:
            return None
        if "trace" not in payload:
            return []
        missing = [path for path in artifact_paths(payload)
                   if not os.path.exists(path)]
        return missing or None

    # -- execution ------------------------------------------------------------

    def run(self) -> List[RunResult]:
        """Run every point; results are returned in input order."""
        for obs in self._observers:
            obs.on_campaign_start(len(self.configs))

        results: List[Optional[RunResult]] = [None] * len(self.configs)
        pending: List[tuple] = []
        for index, config in enumerate(self.configs):
            key = config.cache_key()
            try:
                payload = (self.cache.get(key)
                           if self.cache is not None else None)
            except OSError as exc:
                # A flaky cache store degrades to a miss, never a crash.
                payload = None
                for obs in self._observers:
                    obs.on_cache_error(key, "get", str(exc))
            if payload is not None:
                missing = self._missing_artifacts(payload)
                if missing is not None:
                    for obs in self._observers:
                        obs.on_trace_invalidated(config, missing)
                    payload = None
            if payload is not None:
                result = RunResult(config, key, STATUS_OK, payload,
                                   attempts=0, cached=True)
                results[index] = result
                for obs in self._observers:
                    obs.on_cache_hit(result)
                    obs.on_run_finished(result)
            else:
                pending.append((index, config, 1))

        if pending:
            if self.workers <= 1:
                self._run_inline(pending, results)
            else:
                self._run_pool(pending, results)

        for obs in self._observers:
            obs.on_campaign_end(self.metrics)
        if any(r is None for r in results):  # pragma: no cover - defensive
            raise BatchError("campaign finished with unaccounted runs")
        return results

    # -- inline (serial) path ----------------------------------------------

    def _run_inline(self, pending: List[tuple], results: List) -> None:
        queue = list(pending)
        while queue:
            index, config, attempt = queue.pop(0)
            for obs in self._observers:
                obs.on_run_started(config, attempt)
            started = time.perf_counter()
            try:
                payload = execute_config(config,
                                         trace_path=self._trace_path(config))
                status, detail = STATUS_OK, payload
            except BaseException:
                status, detail = STATUS_FAILED, traceback.format_exc(limit=8)
            wall = time.perf_counter() - started
            retry = self._settle(results, index, config, attempt,
                                 status, detail, wall)
            if retry is not None:
                queue.append(retry)

    # -- pooled path ------------------------------------------------------

    def _run_pool(self, pending: List[tuple], results: List) -> None:
        context = multiprocessing.get_context(self.start_method)
        queue = list(pending)
        pool: List[_Worker] = []
        try:
            for _ in range(min(self.workers, len(queue))):
                pool.append(_Worker(context))
            outstanding = len(queue)
            while outstanding:
                for worker in pool:
                    if queue and not worker.busy:
                        task = queue.pop(0)
                        if not worker.assign(task, self.timeout_s,
                                             self._trace_path(task[1])):
                            # The worker died before taking the task:
                            # replace it and requeue — the task never
                            # started, so this is not a retry attempt.
                            queue.append(task)
                            self._replace(pool, worker,
                                          "worker died before assignment",
                                          config=task[1])
                            continue
                        for obs in self._observers:
                            obs.on_run_started(task[1], task[2])
                self._pump(pool, results, queue)
                settled = sum(1 for r in results if r is not None)
                outstanding = len(results) - settled
        finally:
            for worker in pool:
                if worker.busy:
                    worker.kill()
                else:
                    worker.stop()

    def _pump(self, pool: List[_Worker], results: List,
              queue: List[tuple]) -> None:
        """Wait for one poll tick; collect finished runs and timeouts."""
        busy = [w for w in pool if w.busy]
        if not busy:
            return
        conns = [w.conn for w in busy]
        ready = multiprocessing.connection.wait(conns, timeout=_POLL_S)
        for worker in busy:
            if worker.conn in ready:
                index, config, attempt = worker.task
                try:
                    _, status, detail, wall = worker.conn.recv()
                except (EOFError, OSError):
                    self._replace(pool, worker, "worker died mid-run",
                                  config=config)
                    status, detail, wall = (STATUS_FAILED,
                                            "worker process died", 0.0)
                else:
                    worker.task = worker.deadline = None
                retry = self._settle(results, index, config, attempt,
                                     status, detail, wall)
                if retry is not None:
                    queue.append(retry)
        now = time.perf_counter()
        for worker in list(pool):
            if worker.busy and worker.deadline is not None \
                    and now > worker.deadline:
                index, config, attempt = worker.task
                self._replace(pool, worker, "run timed out", config=config)
                retry = self._settle(results, index, config, attempt,
                                     STATUS_TIMEOUT,
                                     f"run exceeded {self.timeout_s}s",
                                     self.timeout_s or 0.0)
                if retry is not None:
                    queue.append(retry)

    def _replace(self, pool: List[_Worker], worker: _Worker, reason: str,
                 config: Optional[RunConfig] = None) -> None:
        worker.kill()
        position = pool.index(worker)
        pool[position] = _Worker(
            multiprocessing.get_context(self.start_method))
        for obs in self._observers:
            obs.on_worker_replaced(config, reason)

    # -- shared settlement --------------------------------------------------

    def _settle(self, results: List, index: int, config: RunConfig,
                attempt: int, status: str, detail, wall: float):
        """Record one attempt's outcome; return a retry task or None."""
        if status == STATUS_OK:
            result = RunResult(config, config.cache_key(), STATUS_OK,
                               detail, attempts=attempt, wall_s=wall)
            if self.cache is not None:
                try:
                    self.cache.put(result.key, detail, describe=str(config))
                except OSError as exc:
                    # A cache that cannot persist must not lose the
                    # already-computed result; the point just stays
                    # uncached for the next sweep.
                    for obs in self._observers:
                        obs.on_cache_error(result.key, "put", str(exc))
            results[index] = result
            for obs in self._observers:
                obs.on_run_finished(result)
            return None
        if attempt <= self.retries:
            for obs in self._observers:
                obs.on_retry(config, attempt, str(detail))
            return (index, config, attempt + 1)
        result = RunResult(config, config.cache_key(), status,
                           None, error=str(detail),
                           attempts=attempt, wall_s=wall)
        results[index] = result
        for obs in self._observers:
            obs.on_run_finished(result)
        return None
