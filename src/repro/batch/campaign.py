"""The campaign orchestrator: fan simulation points out across workers.

A :class:`Campaign` takes a list of :class:`~repro.batch.config.RunConfig`
points and executes them either inline (``workers <= 1``) or on a pool
of persistent worker processes connected by pipes (see
:mod:`repro.batch.pool`).  The pooled path supports:

* a configurable worker count and start method (``fork``/``spawn``;
  tests pin ``spawn`` via ``REPRO_BATCH_START_METHOD``),
* an external, reusable :class:`~repro.batch.pool.WorkerPool`
  (``pool=``) so consecutive campaigns — DSE generations, injection
  sweeps — skip process startup entirely,
* batched dispatch: adaptive task chunks per pipe message, settled,
  retried and timed out per task,
* a per-run timeout — a worker that overruns is killed and replaced,
* bounded retry of failed / timed-out / crashed runs,
* a content-addressed result cache consulted before any work is
  enqueued (see :mod:`repro.batch.cache`); hits are answered by the
  parent and never cross the IPC boundary,
* passive :class:`CampaignObserver` hooks, mirroring the kernel's
  :class:`~repro.kernel.scheduler.SchedulerObserver` pattern, through
  which progress display and metrics are layered without coupling.

Results come back as structured :class:`RunResult` records in the same
order as the input configurations, whatever order workers finished in.
"""

from __future__ import annotations

import collections
import dataclasses
import multiprocessing.connection
import os
import time
import traceback
from typing import Deque, List, Optional, Sequence, Union

from .cache import ResultCache
from .config import BatchError, RunConfig
from .manifest import artifact_paths
from .pool import (
    START_METHOD_ENV, STATUS_FAILED, STATUS_OK, STATUS_TIMEOUT, WorkerPool,
    _Worker, _worker_main, chunk_size, default_workers, resolve_start_method,
)
from .runner import execute_config

__all__ = [
    "Campaign", "CampaignMetrics", "CampaignObserver", "ProgressObserver",
    "RunResult", "START_METHOD_ENV", "STATUS_FAILED", "STATUS_OK",
    "STATUS_TIMEOUT", "WorkerPool", "default_workers",
    "resolve_start_method",
]

#: How often (seconds) the parent polls worker pipes / deadlines.
_POLL_S = 0.05


@dataclasses.dataclass
class RunResult:
    """Outcome of one campaign point."""

    config: RunConfig
    key: str                       # content-addressed cache key
    status: str                    # ok | failed | timeout
    payload: Optional[dict] = None
    error: str = ""
    attempts: int = 0              # executions performed (0 for cache hits)
    wall_s: float = 0.0            # wall time of the final attempt
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


class CampaignObserver:
    """Passive hook interface; all methods are optional no-ops.

    The same shape as the kernel's ``SchedulerObserver``: metrics and
    progress reporting subscribe without the orchestrator knowing them.
    """

    def on_campaign_start(self, total_runs: int) -> None: ...

    def on_run_started(self, config: RunConfig, attempt: int) -> None: ...

    def on_run_finished(self, result: RunResult) -> None: ...

    def on_cache_hit(self, result: RunResult) -> None: ...

    def on_retry(self, config: RunConfig, attempt: int, error: str) -> None: ...

    def on_trace_invalidated(self, config: RunConfig,
                             missing: List[str]) -> None: ...

    def on_cache_error(self, key: str, operation: str,
                       error: str) -> None: ...

    def on_worker_replaced(self, config: Optional[RunConfig],
                           reason: str) -> None: ...

    def on_campaign_end(self, metrics: "CampaignMetrics") -> None: ...


class CampaignMetrics(CampaignObserver):
    """Counting observer: runs, cache hits, retries, wall time per point."""

    def __init__(self) -> None:
        self.total_runs = 0
        self.completed = 0
        self.failed = 0
        self.cache_hits = 0
        self.retries = 0
        self.trace_reruns = 0        # cache hits re-executed: artifact gone
        self.cache_errors = 0        # cache get/put raised (tolerated)
        self.worker_replacements = 0
        self.run_wall_s: List[float] = []
        self.wall_s = 0.0
        self._started_at = 0.0

    # -- observer callbacks ----------------------------------------------

    def on_campaign_start(self, total_runs: int) -> None:
        self.total_runs = total_runs
        self._started_at = time.perf_counter()

    def on_run_finished(self, result: RunResult) -> None:
        if result.ok:
            self.completed += 1
        else:
            self.failed += 1
        if not result.cached:
            self.run_wall_s.append(result.wall_s)

    def on_cache_hit(self, result: RunResult) -> None:
        self.cache_hits += 1

    def on_retry(self, config: RunConfig, attempt: int, error: str) -> None:
        self.retries += 1

    def on_trace_invalidated(self, config: RunConfig,
                             missing: List[str]) -> None:
        self.trace_reruns += 1

    def on_cache_error(self, key: str, operation: str, error: str) -> None:
        self.cache_errors += 1

    def on_worker_replaced(self, config: Optional[RunConfig],
                           reason: str) -> None:
        self.worker_replacements += 1

    def on_campaign_end(self, metrics: "CampaignMetrics") -> None:
        self.wall_s = time.perf_counter() - self._started_at

    # -- queries ------------------------------------------------------------

    @property
    def mean_run_wall_s(self) -> float:
        if not self.run_wall_s:
            return 0.0
        return sum(self.run_wall_s) / len(self.run_wall_s)

    def summary(self) -> str:
        simulated = len(self.run_wall_s)
        parts = [
            f"{self.completed}/{self.total_runs} runs ok",
            f"{self.cache_hits} cache hits",
            f"{simulated} simulated",
        ]
        if self.failed:
            parts.append(f"{self.failed} failed")
        if self.retries:
            parts.append(f"{self.retries} retries")
        if self.trace_reruns:
            parts.append(f"{self.trace_reruns} trace re-runs")
        if self.cache_errors:
            parts.append(f"{self.cache_errors} cache errors")
        if self.worker_replacements:
            parts.append(f"{self.worker_replacements} workers replaced")
        parts.append(f"wall {self.wall_s:.2f}s")
        if simulated:
            parts.append(f"mean {1e3 * self.mean_run_wall_s:.1f}ms/point")
        return ", ".join(parts)


class ProgressObserver(CampaignObserver):
    """Prints one line per finished run — the CLI's progress display."""

    def __init__(self, stream=None) -> None:
        import sys

        self.stream = stream if stream is not None else sys.stdout
        self._total = 0
        self._done = 0

    def on_campaign_start(self, total_runs: int) -> None:
        self._total = total_runs
        self._done = 0

    def on_run_finished(self, result: RunResult) -> None:
        self._done += 1
        width = len(str(self._total))
        if result.cached:
            detail = "cache"
        elif result.ok:
            detail = f"{1e3 * result.wall_s:.0f}ms"
        else:
            detail = result.status
        retried = f" (attempt {result.attempts})" if result.attempts > 1 else ""
        print(f"[{self._done:{width}d}/{self._total}] "
              f"{result.config.name}: {detail}{retried}",
              file=self.stream)

    def on_retry(self, config: RunConfig, attempt: int, error: str) -> None:
        last_line = error.strip().splitlines()[-1] if error.strip() else error
        print(f"    retrying {config.name} after attempt {attempt}: "
              f"{last_line}", file=self.stream)


class Campaign:
    """Execute a list of run configurations with caching and fan-out."""

    def __init__(self,
                 configs: Sequence[RunConfig],
                 workers: Optional[int] = None,
                 timeout_s: Optional[float] = None,
                 retries: int = 1,
                 cache: Union[ResultCache, str, os.PathLike, None] = None,
                 start_method: Optional[str] = None,
                 observers: Sequence[CampaignObserver] = (),
                 trace_dir: Union[str, os.PathLike, None] = None,
                 pool: Optional[WorkerPool] = None) -> None:
        self.configs = list(configs)
        for config in self.configs:
            if not isinstance(config, RunConfig):
                raise BatchError(f"not a RunConfig: {config!r}")
        if workers is None:
            self.workers = pool.workers if pool is not None \
                else default_workers()
        else:
            self.workers = int(workers)
        if self.workers < 0:
            raise BatchError("workers must be >= 0")
        self.timeout_s = timeout_s
        if retries < 0:
            raise BatchError("retries must be >= 0")
        self.retries = int(retries)
        if cache is None or isinstance(cache, ResultCache):
            self.cache: Optional[ResultCache] = cache
        else:
            self.cache = ResultCache(cache)
        self.pool = pool
        if pool is not None:
            if start_method is not None \
                    and resolve_start_method(start_method) != \
                    pool.start_method:
                raise BatchError(
                    f"campaign start method {start_method!r} conflicts "
                    f"with the pool's {pool.start_method!r}")
            self.start_method = pool.start_method
        else:
            self.start_method = resolve_start_method(start_method)
        if trace_dir is None:
            self.trace_dir: Optional[str] = None
        else:
            self.trace_dir = os.fspath(trace_dir)
            os.makedirs(self.trace_dir, exist_ok=True)
        self.metrics = CampaignMetrics()
        self._observers: List[CampaignObserver] = [self.metrics]
        self._observers.extend(observers)

    def add_observer(self, observer: CampaignObserver) -> None:
        self._observers.append(observer)

    def _trace_path(self, config: RunConfig) -> Optional[str]:
        """Per-run trace artifact path, keyed by the run's cache hash."""
        if self.trace_dir is None:
            return None
        return os.path.join(self.trace_dir, f"{config.cache_key()}.jsonl")

    def _missing_artifacts(self, payload: dict) -> Optional[List[str]]:
        """Trace pointers a cache hit records but disk no longer has.

        Returns None when the hit is usable as-is; a (possibly empty)
        list of missing paths when the run must be re-executed with
        tracing.  Only meaningful when this campaign wants artifacts
        (``trace_dir`` set): a payload cached by an untraced campaign
        has no ``trace`` entry at all and must be re-traced, and a
        payload whose recorded artifacts were pruned (retention
        divergence, manual deletion) must be regenerated rather than
        reported with dangling pointers.
        """
        if self.trace_dir is None:
            return None
        if "trace" not in payload:
            return []
        missing = [path for path in artifact_paths(payload)
                   if not os.path.exists(path)]
        return missing or None

    # -- execution ------------------------------------------------------------

    def run(self) -> List[RunResult]:
        """Run every point; results are returned in input order."""
        for obs in self._observers:
            obs.on_campaign_start(len(self.configs))

        results: List[Optional[RunResult]] = [None] * len(self.configs)
        pending: List[tuple] = []
        for index, config in enumerate(self.configs):
            key = config.cache_key()
            try:
                payload = (self.cache.get(key)
                           if self.cache is not None else None)
            except OSError as exc:
                # A flaky cache store degrades to a miss, never a crash.
                payload = None
                for obs in self._observers:
                    obs.on_cache_error(key, "get", str(exc))
            if payload is not None:
                missing = self._missing_artifacts(payload)
                if missing is not None:
                    for obs in self._observers:
                        obs.on_trace_invalidated(config, missing)
                    payload = None
            if payload is not None:
                result = RunResult(config, key, STATUS_OK, payload,
                                   attempts=0, cached=True)
                results[index] = result
                for obs in self._observers:
                    obs.on_cache_hit(result)
                    obs.on_run_finished(result)
            else:
                pending.append((index, config, 1))

        if pending:
            if self.pool is None and self.workers <= 1:
                self._run_inline(pending, results)
            else:
                self._run_pool(pending, results)

        for obs in self._observers:
            obs.on_campaign_end(self.metrics)
        if any(r is None for r in results):  # pragma: no cover - defensive
            raise BatchError("campaign finished with unaccounted runs")
        return results

    # -- inline (serial) path ----------------------------------------------

    def _run_inline(self, pending: List[tuple], results: List) -> None:
        queue: Deque[tuple] = collections.deque(pending)
        while queue:
            index, config, attempt = queue.popleft()
            for obs in self._observers:
                obs.on_run_started(config, attempt)
            started = time.perf_counter()
            try:
                payload = execute_config(config,
                                         trace_path=self._trace_path(config))
                status, detail = STATUS_OK, payload
            except BaseException:
                status, detail = STATUS_FAILED, traceback.format_exc(limit=8)
            wall = time.perf_counter() - started
            retry = self._settle(results, index, config, attempt,
                                 status, detail, wall)
            if retry is not None:
                queue.append(retry)

    # -- pooled path ------------------------------------------------------

    def _run_pool(self, pending: List[tuple], results: List) -> None:
        queue: Deque[tuple] = collections.deque(pending)
        pool = self.pool
        owned = pool is None
        if owned:
            pool = WorkerPool(self.workers, self.start_method)
        try:
            width = min(self.workers or pool.workers, len(queue))
            active = pool.ensure(width)
            outstanding = len(queue)
            while outstanding:
                for slot, worker in enumerate(active):
                    if queue and not worker.busy:
                        chunk = self._take_chunk(queue, len(active))
                        paths = [self._trace_path(task[1])
                                 for task in chunk]
                        if not worker.assign(chunk, self.timeout_s, paths):
                            # The worker died before taking the chunk:
                            # replace it and requeue — no task started,
                            # so no retry attempt is consumed.
                            queue.extend(chunk)
                            active[slot] = self._swap(
                                pool, worker,
                                "worker died before assignment",
                                config=chunk[0][1])
                            continue
                        for obs in self._observers:
                            obs.on_run_started(chunk[0][1], chunk[0][2])
                self._pump(pool, active, results, queue)
                settled = sum(1 for r in results if r is not None)
                outstanding = len(results) - settled
        finally:
            if owned:
                pool.shutdown()
            else:
                # A shared pool stays warm for the next campaign; only
                # workers stuck mid-chunk are discarded.
                pool.reclaim()

    @staticmethod
    def _take_chunk(queue: Deque[tuple], width: int) -> List[tuple]:
        count = min(chunk_size(len(queue), width), len(queue))
        return [queue.popleft() for _ in range(count)]

    def _pump(self, pool: WorkerPool, active: List, results: List,
              queue: Deque[tuple]) -> None:
        """Wait for one poll tick; collect finished runs and timeouts."""
        busy = [w for w in active if w.busy]
        if not busy:
            return
        conns = [w.conn for w in busy]
        ready = multiprocessing.connection.wait(conns, timeout=_POLL_S)
        for worker in busy:
            if worker.conn not in ready:
                continue
            # Drain every outcome this worker has streamed back, one
            # settle per task; timeout/retry stay per-task in a chunk.
            while True:
                index, config, attempt = worker.task
                try:
                    _, status, detail, wall = worker.conn.recv()
                except (EOFError, OSError):
                    # Only the task that was running is charged an
                    # attempt; the rest of the chunk never started.
                    queue.extend(worker.drain_rest())
                    slot = active.index(worker)
                    active[slot] = self._swap(pool, worker,
                                              "worker died mid-run",
                                              config=config)
                    retry = self._settle(results, index, config, attempt,
                                         STATUS_FAILED,
                                         "worker process died", 0.0)
                    if retry is not None:
                        queue.append(retry)
                    break
                head = worker.advance(self.timeout_s)
                if head is not None:
                    for obs in self._observers:
                        obs.on_run_started(head[1], head[2])
                retry = self._settle(results, index, config, attempt,
                                     status, detail, wall)
                if retry is not None:
                    queue.append(retry)
                if not worker.busy or not worker.conn.poll():
                    break
        now = time.perf_counter()
        for slot, worker in enumerate(list(active)):
            if worker.busy and worker.deadline is not None \
                    and now > worker.deadline:
                index, config, attempt = worker.task
                queue.extend(worker.drain_rest())
                active[slot] = self._swap(pool, worker, "run timed out",
                                          config=config)
                retry = self._settle(results, index, config, attempt,
                                     STATUS_TIMEOUT,
                                     f"run exceeded {self.timeout_s}s",
                                     self.timeout_s or 0.0)
                if retry is not None:
                    queue.append(retry)

    def _swap(self, pool: WorkerPool, worker, reason: str,
              config: Optional[RunConfig] = None):
        fresh = pool.replace(worker)
        for obs in self._observers:
            obs.on_worker_replaced(config, reason)
        return fresh

    # -- shared settlement --------------------------------------------------

    def _settle(self, results: List, index: int, config: RunConfig,
                attempt: int, status: str, detail, wall: float):
        """Record one attempt's outcome; return a retry task or None."""
        if status == STATUS_OK:
            result = RunResult(config, config.cache_key(), STATUS_OK,
                               detail, attempts=attempt, wall_s=wall)
            if self.cache is not None:
                try:
                    self.cache.put(result.key, detail, describe=str(config))
                except OSError as exc:
                    # A cache that cannot persist must not lose the
                    # already-computed result; the point just stays
                    # uncached for the next sweep.
                    for obs in self._observers:
                        obs.on_cache_error(result.key, "put", str(exc))
            results[index] = result
            for obs in self._observers:
                obs.on_run_finished(result)
            return None
        if attempt <= self.retries:
            for obs in self._observers:
                obs.on_retry(config, attempt, str(detail))
            return (index, config, attempt + 1)
        result = RunResult(config, config.cache_key(), status,
                           None, error=str(detail),
                           attempts=attempt, wall_s=wall)
        results[index] = result
        for obs in self._observers:
            obs.on_run_finished(result)
        return None
