"""Content-addressed result cache for batch campaigns.

One JSON file per cache key under a root directory, fanned out by the
first two hex digits of the key (git-object style) so large sweeps do
not pile thousands of files into one directory.  Writes go through a
temporary file, an ``fsync``, and :func:`os.replace` so concurrent
campaigns sharing a cache directory never observe a torn entry — and a
machine crash mid-write never leaves a renamed-but-empty one.

Every entry carries a ``meta`` block — schema version, a SHA-256
checksum of the canonical payload JSON, the library version and a
creation timestamp — which :meth:`ResultCache.get` validates before
trusting the payload.  A corrupt, truncated, tampered-with, foreign
(wrong-key) or schema-incompatible entry degrades to a cache miss,
counted in :attr:`ResultCache.invalidated`, and is rewritten by the
next successful run.  The key itself (see
:meth:`repro.batch.config.RunConfig.cache_key`) already covers the
runner kind, all parameters and the library version, so validation is
purely an *integrity* check, never a semantic one.

Every mutation is additionally journalled into the cache's
:class:`~repro.batch.manifest.CacheManifest`, the index that lets
``repro cache stats``/``verify``/``gc`` skip the full directory scan;
the entry file is always published first, so a lost journal line is
recoverable drift, never data loss.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
import time
from typing import Optional, Tuple

from .. import __version__
from .manifest import CacheManifest, artifact_paths

#: Default cache location (relative to the working directory) used by
#: the CLI; tests and library users pass an explicit root instead.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Version of the on-disk entry layout.  Bump when the entry structure
#: changes incompatibly; entries with any other schema (including the
#: pre-meta layout) are treated as invalid and rewritten.
CACHE_SCHEMA_VERSION = 1


def payload_checksum(payload: dict) -> str:
    """SHA-256 hex digest over the canonical JSON of ``payload``."""
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def validate_entry(key: str, entry) -> Tuple[Optional[dict], str]:
    """Check one parsed cache entry; returns ``(payload, problem)``.

    ``payload`` is None exactly when the entry is invalid, in which
    case ``problem`` is a short human-readable reason.  Shared by
    :meth:`ResultCache.get` and the maintenance sweeps so the CLI's
    ``repro cache verify`` applies the same rules as a live campaign.
    """
    if not isinstance(entry, dict):
        return None, "entry is not a JSON object"
    if entry.get("key") != key:
        return None, f"key mismatch (entry says {entry.get('key')!r})"
    meta = entry.get("meta")
    if not isinstance(meta, dict):
        return None, "no meta block (pre-integrity schema)"
    schema = meta.get("schema")
    if schema != CACHE_SCHEMA_VERSION:
        return None, f"schema {schema!r} != {CACHE_SCHEMA_VERSION}"
    payload = entry.get("payload")
    if not isinstance(payload, dict):
        return None, "payload is not a JSON object"
    checksum = meta.get("checksum")
    actual = payload_checksum(payload)
    if checksum != actual:
        return None, f"checksum mismatch (stored {str(checksum)[:12]}…)"
    return payload, ""


class ResultCache:
    """Directory-backed map from cache key to integrity-checked payload."""

    def __init__(self, root) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: Entries found on disk but rejected by integrity validation.
        self.invalidated = 0
        #: Successful lookups / lookups that found nothing at all.
        self.hits = 0
        self.misses = 0
        #: Journal/snapshot index of this root (see repro.batch.manifest).
        self.manifest = CacheManifest(self.root)

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        """Return the validated payload for ``key``, or None on a miss.

        A missing file is a clean miss; an unreadable, unparsable or
        integrity-failed entry is also a miss but is counted in
        :attr:`invalidated` so campaigns and ``repro cache stats`` can
        surface silent corruption.
        """
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError):
            self.invalidated += 1
            self.misses += 1
            return None
        payload, _problem = validate_entry(key, entry)
        if payload is None:
            self.invalidated += 1
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: dict, describe: str = "") -> None:
        """Store ``payload`` under ``key`` atomically and durably.

        The temporary file is flushed and ``fsync``-ed before the
        :func:`os.replace`, so a crash can lose the entry but never
        publish a torn or empty one under the final name.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "key": key,
            "describe": describe,
            "meta": {
                "schema": CACHE_SCHEMA_VERSION,
                "checksum": payload_checksum(payload),
                "created_at": time.time(),
                "version": __version__,
            },
            "payload": payload,
        }
        body = json.dumps(entry, sort_keys=True, indent=1)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(body)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        # The entry is durably published; index it.  A journal failure
        # must not fail the put — unindexed entries are drift, repaired
        # by the next ``repro cache verify --rescan``.
        try:
            stat = os.stat(path)
            self.manifest.record_put(
                key, size=stat.st_size, mtime_ns=stat.st_mtime_ns,
                created_at=entry["meta"]["created_at"], describe=describe,
                checksum=entry["meta"]["checksum"],
                artifacts=artifact_paths(payload))
        except OSError:
            pass

    def remove(self, key: str) -> bool:
        """Delete the entry for ``key``; returns whether one existed."""
        try:
            self.path_for(key).unlink()
        except OSError:
            return False
        try:
            self.manifest.record_remove(key)
        except OSError:
            pass
        return True

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("??/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.root.glob("??/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        try:
            self.manifest.record_clear()
        except OSError:
            pass
        return removed
