"""Content-addressed result cache for batch campaigns.

One JSON file per cache key under a root directory, fanned out by the
first two hex digits of the key (git-object style) so large sweeps do
not pile thousands of files into one directory.  Writes go through a
temporary file plus :func:`os.replace` so concurrent campaigns sharing
a cache directory never observe a torn entry.

The key (see :meth:`repro.batch.config.RunConfig.cache_key`) already
covers the runner kind, all parameters and the library version, so a
lookup is a plain existence check — no validation beyond JSON parsing
is required, and a corrupt or truncated entry is treated as a miss and
rewritten.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from typing import Optional

#: Default cache location (relative to the working directory) used by
#: the CLI; tests and library users pass an explicit root instead.
DEFAULT_CACHE_DIR = ".repro-cache"


class ResultCache:
    """Directory-backed map from cache key to result payload."""

    def __init__(self, root) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        """Return the stored payload for ``key``, or None on a miss."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        payload = entry.get("payload")
        return payload if isinstance(payload, dict) else None

    def put(self, key: str, payload: dict, describe: str = "") -> None:
        """Store ``payload`` under ``key`` atomically."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"key": key, "describe": describe, "payload": payload}
        body = json.dumps(entry, sort_keys=True, indent=1)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(body)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("??/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.root.glob("??/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
