"""Deterministic fault injection for the batch cache layer.

The campaign's crash-safety claims ("a flaky cache never loses a
computed result", "a corrupt entry is a counted miss") are only worth
anything if they are driven by tests — the same way the strict-timed
kernel is driven by the determinism property layer.  This module
supplies the cache half of that harness; the worker-process half lives
in the ``probe`` runner kinds (``die``, ``slow-then-ok``,
``corrupt-cache`` in :mod:`repro.batch.runner`).

:class:`FaultingCache` wraps the real on-disk :class:`ResultCache`
with a *deterministic* fault plan — faults fire on exact call ordinals
and exact keys, never randomness — so a failing test replays exactly:

* ``fail_gets_for`` / ``fail_puts_for`` — raise :class:`OSError` on
  ``get``/``put`` for these keys (every time, simulating a dead shard
  or a permission wall);
* ``fail_first_gets`` / ``fail_first_puts`` — raise on the first N
  calls regardless of key (a cache that comes up late);
* ``corrupt_puts_for`` — the write *appears* to succeed but the entry
  lands with a wrong payload checksum (torn write past the atomic
  rename, e.g. a buggy foreign writer sharing the directory).

Fault kinds and provenance records come from the shared taxonomy in
:mod:`repro.inject.vocabulary` (``cache-io-get``, ``cache-io-put``,
``cache-torn-put``): every fault this harness lands is logged in
:attr:`FaultingCache.applied` with the same record schema the
model-level injector uses, so infra and model campaigns report through
one vocabulary.  The import is deferred to call time to keep
``repro.batch`` importable without pulling in the whole inject stack.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Iterable, Optional

from .cache import CACHE_SCHEMA_VERSION, ResultCache


class CacheFault(OSError):
    """The injected failure; an OSError so real handling paths fire.

    ``kind`` names the taxonomy entry (``cache-io-get`` /
    ``cache-io-put``) the fault was injected as.
    """

    def __init__(self, message: str, kind: str = ""):
        super().__init__(message)
        self.kind = kind


class FaultingCache(ResultCache):
    """A :class:`ResultCache` with a deterministic fault plan."""

    def __init__(self, root,
                 fail_gets_for: Iterable[str] = (),
                 fail_puts_for: Iterable[str] = (),
                 corrupt_puts_for: Iterable[str] = (),
                 fail_first_gets: int = 0,
                 fail_first_puts: int = 0) -> None:
        super().__init__(root)
        self.fail_gets_for = set(fail_gets_for)
        self.fail_puts_for = set(fail_puts_for)
        self.corrupt_puts_for = set(corrupt_puts_for)
        self.fail_first_gets = int(fail_first_gets)
        self.fail_first_puts = int(fail_first_puts)
        self.get_calls = 0
        self.put_calls = 0
        self.faults_injected = 0
        #: Shared-vocabulary provenance records, one per injected fault.
        self.applied: list = []

    def _log_fault(self, kind_name: str, operation: str, key: str) -> None:
        from ..inject.vocabulary import FaultRecord

        self.faults_injected += 1
        self.applied.append(FaultRecord(
            kind=kind_name, target=f"cache:{operation}:{key[:12]}"))

    def faults_by_kind(self) -> dict:
        """Injected-fault counts per taxonomy kind name."""
        counts: dict = {}
        for record in self.applied:
            counts[record.kind] = counts.get(record.kind, 0) + 1
        return counts

    def get(self, key: str) -> Optional[dict]:
        from ..inject.vocabulary import CACHE_IO_GET

        self.get_calls += 1
        if key in self.fail_gets_for or self.get_calls <= self.fail_first_gets:
            self._log_fault(CACHE_IO_GET.name, "get", key)
            raise CacheFault(f"injected get fault for {key[:12]}…",
                             kind=CACHE_IO_GET.name)
        return super().get(key)

    def put(self, key: str, payload: dict, describe: str = "") -> None:
        from ..inject.vocabulary import CACHE_IO_PUT, CACHE_TORN_PUT

        self.put_calls += 1
        if key in self.fail_puts_for or self.put_calls <= self.fail_first_puts:
            self._log_fault(CACHE_IO_PUT.name, "put", key)
            raise CacheFault(f"injected put fault for {key[:12]}…",
                             kind=CACHE_IO_PUT.name)
        if key in self.corrupt_puts_for:
            self._log_fault(CACHE_TORN_PUT.name, "put", key)
            self._put_corrupt(key, payload, describe)
            return
        super().put(key, payload, describe)

    def _put_corrupt(self, key: str, payload: dict, describe: str) -> None:
        """Write a structurally plausible entry with a bad checksum.

        Deliberately bypasses ``super().put`` — and with it the
        manifest journal — exactly like the foreign writer it models.
        The entry lands on disk unindexed, so manifest-backed ``verify``
        reports it as drift until a ``--rescan`` reconciles; tests lean
        on this to exercise the drift path without extra plumbing.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "key": key,
            "describe": describe,
            "meta": {
                "schema": CACHE_SCHEMA_VERSION,
                "checksum": "0" * 64,
                "created_at": 0.0,
                "version": "faulting",
            },
            "payload": payload,
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json")
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(entry, handle, sort_keys=True, indent=1)
        os.replace(tmp_name, path)


def corrupt_entry_file(cache: ResultCache, key: str,
                       text: str = "{ truncated mid-write") -> None:
    """Overwrite ``key``'s entry file in place with non-JSON garbage.

    Test helper simulating a torn write from outside the atomic-rename
    protocol (a crashed foreign process, a bad filesystem).
    """
    path = cache.path_for(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")


__all__ = ["CacheFault", "FaultingCache", "corrupt_entry_file"]
