"""Persistent worker processes and batched task dispatch.

Historically every :class:`~repro.batch.campaign.Campaign` spawned its
own worker processes inside ``run()`` and tore them down at the end —
under the test suite's pinned ``spawn`` start method that means a full
interpreter boot plus workload imports *per campaign*, which dominates
wall time for the many-small-campaign callers (``repro dse`` runs one
campaign per generation, ``repro inject`` one per fault).  This module
factors the processes out into a :class:`WorkerPool` that outlives any
single campaign:

* **Warm reuse** — a pool is spawned lazily (:meth:`WorkerPool.ensure`)
  and handed to consecutive campaigns via ``Campaign(pool=...)``;
  workers keep imported workloads and cost tables hot.  Campaigns
  that find every point in the result cache never spawn a process at
  all, and cache hits are answered by the parent before dispatch so a
  hit never crosses the IPC boundary.
* **Batched dispatch** — the parent sends task *chunks* (lists of
  ``(index, config, attempt, trace_path)`` tuples) per pipe message
  and the worker streams one outcome per task back, so per-message
  latency amortizes across tasks while timeout/retry/replacement
  semantics stay per-task (:meth:`_Worker.advance` re-arms the
  deadline as each head task settles).  Chunk sizing is adaptive:
  :func:`chunk_size` grows chunks on long queues but keeps them at 1
  when the queue is comparable to the worker count, so short sweeps
  schedule exactly like the unbatched path did.

A worker that dies or overruns its per-task deadline is killed and
replaced (:meth:`WorkerPool.replace`); the rest of its chunk is
requeued without consuming retry attempts — only the task that was
actually running is charged.
"""

from __future__ import annotations

import collections
import multiprocessing
import os
import time
import traceback
from typing import Deque, List, Optional, Sequence

from .config import BatchError
from .runner import execute_config

#: Environment knob for the default worker start method; the test suite
#: pins this to ``spawn`` so determinism across fresh interpreters is
#: what gets exercised.
START_METHOD_ENV = "REPRO_BATCH_START_METHOD"

STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"

#: Largest task chunk one pipe message may carry.
CHUNK_CAP = 16

#: Scheduling granularity: aim for this many chunks per worker so the
#: tail of a sweep still load-balances across the pool.
CHUNK_WAVES = 4


def default_workers() -> int:
    return min(4, os.cpu_count() or 1)


def resolve_start_method(start_method: Optional[str] = None) -> str:
    """Explicit argument > ``REPRO_BATCH_START_METHOD`` > platform default."""
    method = start_method or os.environ.get(START_METHOD_ENV)
    if method:
        if method not in multiprocessing.get_all_start_methods():
            raise BatchError(f"start method {method!r} not available here")
        return method
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"


def chunk_size(queued: int, width: int) -> int:
    """Tasks per dispatch for a queue of ``queued`` over ``width`` workers.

    ``max(1, min(CHUNK_CAP, queued // (width * CHUNK_WAVES)))`` — long
    queues amortize IPC over up to :data:`CHUNK_CAP` tasks per message,
    while any queue shorter than ``width * CHUNK_WAVES`` degenerates to
    single-task dispatch, preserving the fine-grained scheduling (and
    overlap of sleepy runs) of the unbatched path.
    """
    width = max(1, width)
    return max(1, min(CHUNK_CAP, queued // (width * CHUNK_WAVES)))


def _worker_main(conn) -> None:
    """Worker loop: receive task chunks, stream one outcome per task.

    A chunk is a list of ``(index, config, attempt, trace_path)``
    tuples; each task's outcome ``(index, status, detail, wall)`` is
    sent back as soon as it finishes so the parent can settle, retry
    and re-arm timeouts per task.  ``None`` terminates the loop.
    """
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        alive = True
        for index, config, attempt, trace_path in message:
            started = time.perf_counter()
            try:
                payload = execute_config(config, trace_path=trace_path)
                outcome = (index, STATUS_OK, payload,
                           time.perf_counter() - started)
            except BaseException:
                outcome = (index, STATUS_FAILED,
                           traceback.format_exc(limit=8),
                           time.perf_counter() - started)
            try:
                conn.send(outcome)
            except (BrokenPipeError, OSError):
                alive = False
                break
        if not alive:
            break
    conn.close()


class _Worker:
    """Parent-side handle on one worker process."""

    def __init__(self, context) -> None:
        self.conn, child_conn = context.Pipe(duplex=True)
        self.process = context.Process(target=_worker_main,
                                       args=(child_conn,), daemon=True)
        self.process.start()
        child_conn.close()
        #: Tasks in flight, in execution order; head is running now.
        self.chunk: Deque[tuple] = collections.deque()
        self.deadline: Optional[float] = None

    @property
    def busy(self) -> bool:
        return bool(self.chunk)

    @property
    def task(self) -> Optional[tuple]:
        """The ``(index, config, attempt)`` task executing right now."""
        return self.chunk[0] if self.chunk else None

    def assign(self, tasks: Sequence[tuple], timeout_s: Optional[float],
               trace_paths: Sequence[Optional[str]]) -> bool:
        """Hand a chunk of tasks over; False if the worker died first.

        A worker can die between finishing its last chunk and the next
        assignment (crash, OOM-kill); ``send`` then raises into the
        parent.  That must not take the whole campaign down — report
        the failed hand-off so the caller replaces the worker and
        requeues the chunk.
        """
        message = [task + (trace_path,)
                   for task, trace_path in zip(tasks, trace_paths)]
        try:
            self.conn.send(message)
        except (BrokenPipeError, OSError):
            return False
        self.chunk.extend(tasks)
        self.deadline = (time.perf_counter() + timeout_s
                         if timeout_s is not None else None)
        return True

    def advance(self, timeout_s: Optional[float]) -> Optional[tuple]:
        """Settle the head task; returns the new head task or None.

        The worker started the next task the moment it sent the
        previous outcome, so the fresh deadline is armed here — each
        task in a chunk gets the full per-run timeout.
        """
        self.chunk.popleft()
        if self.chunk:
            self.deadline = (time.perf_counter() + timeout_s
                             if timeout_s is not None else None)
            return self.chunk[0]
        self.deadline = None
        return None

    def drain_rest(self) -> List[tuple]:
        """Abandon the chunk; returns every task *behind* the head.

        Used when the worker dies or times out: the head task was the
        one actually running (it is charged an attempt by the caller),
        the rest never started and requeue attempt-free.
        """
        rest = list(self.chunk)[1:]
        self.chunk.clear()
        self.deadline = None
        return rest

    def kill(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - last resort
            self.process.kill()
            self.process.join(timeout=5.0)

    def stop(self) -> None:
        """Polite shutdown of an idle worker."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=5.0)
        if self.process.is_alive():
            self.kill()
        else:
            self.conn.close()


class WorkerPool:
    """A set of worker processes that survives across campaigns.

    Construction is cheap and spawns nothing; processes appear on the
    first :meth:`ensure` call and live until :meth:`shutdown`.  Hand
    the same pool to consecutive campaigns (``Campaign(pool=...)``,
    or through ``Evolution``/``DependabilityAnalysis``) and generation
    N+1 reuses the interpreters generation N warmed up.
    """

    def __init__(self, workers: Optional[int] = None,
                 start_method: Optional[str] = None) -> None:
        self.workers = default_workers() if workers is None else int(workers)
        if self.workers < 1:
            raise BatchError("pool workers must be >= 1")
        self.start_method = resolve_start_method(start_method)
        self._context = multiprocessing.get_context(self.start_method)
        self._workers: List[_Worker] = []
        #: Lifetime spawn count — a warm pool run across G generations
        #: keeps this at the pool width instead of G * width.
        self.spawned = 0
        self._closed = False

    @property
    def size(self) -> int:
        """Live worker processes right now."""
        return len(self._workers)

    def _spawn(self) -> _Worker:
        worker = _Worker(self._context)
        self.spawned += 1
        return worker

    def ensure(self, count: int) -> List[_Worker]:
        """Grow to ``min(count, self.workers)`` live workers, lazily."""
        if self._closed:
            raise BatchError("worker pool is shut down")
        count = min(max(0, count), self.workers)
        while len(self._workers) < count:
            self._workers.append(self._spawn())
        return list(self._workers[:count])

    def replace(self, worker: _Worker) -> _Worker:
        """Kill ``worker`` and spawn a fresh one in its slot."""
        position = self._workers.index(worker)
        worker.kill()
        fresh = self._spawn()
        self._workers[position] = fresh
        return fresh

    def discard(self, worker: _Worker) -> None:
        """Kill ``worker`` and drop it from the pool without replacing."""
        worker.kill()
        try:
            self._workers.remove(worker)
        except ValueError:
            pass

    def reclaim(self) -> None:
        """End-of-campaign sweep for an external (shared) pool: any
        worker still holding tasks is in an unknown mid-chunk state and
        is discarded; idle warm workers are kept for the next campaign.
        """
        for worker in list(self._workers):
            if worker.busy:
                self.discard(worker)

    def shutdown(self) -> None:
        """Stop every worker; the pool cannot be reused afterwards."""
        for worker in self._workers:
            if worker.busy:
                worker.kill()
            else:
                worker.stop()
        self._workers = []
        self._closed = True

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


__all__ = [
    "CHUNK_CAP", "CHUNK_WAVES", "START_METHOD_ENV", "STATUS_FAILED",
    "STATUS_OK", "STATUS_TIMEOUT", "WorkerPool", "chunk_size",
    "default_workers", "resolve_start_method",
]
