"""Dataflow-graph capture from annotated execution.

The behavioral-synthesis substrate needs the *actual* operation graph of
a segment, not just its cost totals.  :class:`DfgRecorder` plugs into a
:class:`~repro.annotate.CostContext` as its operation recorder: every
annotated operation becomes a DFG node whose predecessors are the
producers of its operands (constants and un-tracked inputs have none).

Because the capture happens on a *dynamic* execution, the DFG is the
fully-unrolled, branch-resolved operation trace — exactly what a
behavioral synthesis tool schedules for one segment (the paper's
segments are closed single-entry/single-exit regions, so this is
well-defined).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Dict, List, Sequence

from ..annotate.context import CostContext, MODE_HW, OperationRecorder, active
from ..annotate.costs import OperationCosts
from ..errors import SynthesisError


@dataclasses.dataclass(frozen=True)
class DfgNode:
    """One operation in the captured dataflow graph."""

    node_id: int
    operation: str
    latency_cycles: int          # integer cycle slots (ceil of table latency)
    raw_latency: float           # the fractional table latency
    predecessors: tuple          # node ids of operand producers


class DataflowGraph:
    """An immutable-after-capture operation DAG."""

    def __init__(self):
        self.nodes: List[DfgNode] = []
        self._by_id: Dict[int, DfgNode] = {}

    def add(self, node: DfgNode) -> None:
        if node.node_id in self._by_id:
            raise SynthesisError(f"duplicate DFG node id {node.node_id}")
        self.nodes.append(node)
        self._by_id[node.node_id] = node

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> DfgNode:
        return self._by_id[node_id]

    def successors(self) -> Dict[int, List[int]]:
        table: Dict[int, List[int]] = {n.node_id: [] for n in self.nodes}
        for node in self.nodes:
            for pred in node.predecessors:
                table[pred].append(node.node_id)
        return table

    def operations_used(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for node in self.nodes:
            counts[node.operation] = counts.get(node.operation, 0) + 1
        return counts

    def total_latency(self) -> int:
        """Sum of integer latencies — the fully-sequential lower bound."""
        return sum(n.latency_cycles for n in self.nodes)

    def critical_path(self) -> int:
        """Longest dependence chain in integer cycles (nodes are in
        topological order by construction: operands precede results)."""
        finish: Dict[int, int] = {}
        longest = 0
        for node in self.nodes:
            start = max((finish[p] for p in node.predecessors), default=0)
            end = start + node.latency_cycles
            finish[node.node_id] = end
            if end > longest:
                longest = end
        return longest


class DfgRecorder(OperationRecorder):
    """Cost-context recorder that builds a :class:`DataflowGraph`.

    Zero-latency operations (wires on a datapath: ``assign``, ``branch``
    under the HW cost table) are skipped — they occupy no functional
    unit and no cycle slot.
    """

    def __init__(self):
        self.graph = DataflowGraph()
        self._known_ids: set = set()

    def record(self, operation: str, latency: float,
               operand_ids: Sequence[int], result_id: int) -> None:
        if latency <= 0:
            return
        predecessors = tuple(i for i in operand_ids
                             if i >= 0 and i in self._known_ids)
        self._known_ids.add(result_id)
        self.graph.add(DfgNode(
            node_id=result_id,
            operation=operation,
            latency_cycles=max(1, math.ceil(latency)),
            raw_latency=latency,
            predecessors=predecessors,
        ))


def capture_dfg(fn: Callable, args: Sequence,
                costs: OperationCosts) -> DataflowGraph:
    """Execute ``fn(*args)`` under a recording HW context; return its DFG.

    ``args`` should be annotated values (:class:`~repro.annotate.AInt`,
    :class:`~repro.annotate.AArray`, ...) for the dataflow to be seen.
    """
    recorder = DfgRecorder()
    context = CostContext(costs, MODE_HW, recorder=recorder)
    with active(context):
        fn(*args)
    if not len(recorder.graph):
        raise SynthesisError(
            f"no operations captured from {getattr(fn, '__name__', fn)!r}; "
            f"did you pass annotated arguments?"
        )
    return recorder.graph
