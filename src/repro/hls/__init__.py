"""Behavioral-synthesis substrate: DFG capture, scheduling, allocation."""

from .allocation import (
    Allocation,
    DesignPoint,
    FU_AREA,
    explore_design_space,
    pareto_front,
    required_classes,
)
from .dfg import DataflowGraph, DfgNode, DfgRecorder, capture_dfg
from .scheduling import (
    FU_OF_OP,
    Schedule,
    UNIVERSAL_FU,
    alap,
    asap,
    fu_class,
    list_schedule,
)
from .synthesis import (
    SynthesisResult,
    synthesize_best_case,
    synthesize_constrained,
    synthesize_function,
    synthesize_worst_case,
)

__all__ = [
    "Allocation", "DesignPoint", "FU_AREA", "explore_design_space",
    "pareto_front", "required_classes",
    "DataflowGraph", "DfgNode", "DfgRecorder", "capture_dfg",
    "FU_OF_OP", "Schedule", "UNIVERSAL_FU", "alap", "asap", "fu_class",
    "list_schedule",
    "SynthesisResult", "synthesize_best_case", "synthesize_constrained",
    "synthesize_function", "synthesize_worst_case",
]
