"""Functional-unit allocation and the area model.

Area figures are relative units for a generic standard-cell library —
the Fig. 4 design-space curve only needs *consistent* relative costs
(one multiplier ≈ several ALUs, a divider dwarfs both).
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, List, Mapping, Tuple

from ..errors import SynthesisError
from .dfg import DataflowGraph
from .scheduling import UNIVERSAL_FU, fu_class, list_schedule

#: Relative area per functional-unit class.
FU_AREA: Dict[str, float] = {
    "alu": 1.0,
    "mul": 8.0,
    "div": 20.0,
    "mem": 2.0,     # a memory port
    "fpu": 30.0,
    UNIVERSAL_FU: 24.0,   # an ALU that also multiplies/divides
}


@dataclasses.dataclass(frozen=True)
class Allocation:
    """A chosen number of units per FU class."""

    units: Tuple[Tuple[str, int], ...]

    @classmethod
    def of(cls, mapping: Mapping[str, int]) -> "Allocation":
        for fu, count in mapping.items():
            if fu not in FU_AREA:
                raise SynthesisError(f"unknown FU class {fu!r}")
            if count < 0:
                raise SynthesisError(f"negative unit count for {fu!r}")
        return cls(tuple(sorted(mapping.items())))

    def as_dict(self) -> Dict[str, int]:
        return dict(self.units)

    @property
    def area(self) -> float:
        return sum(FU_AREA[fu] * count for fu, count in self.units)

    def __str__(self) -> str:
        inner = ", ".join(f"{count}x{fu}" for fu, count in self.units if count)
        return f"Allocation({inner}, area={self.area:g})"


@dataclasses.dataclass(frozen=True)
class DesignPoint:
    """One point of the Fig. 4 implementation-solution space."""

    allocation: Allocation
    latency_cycles: int
    area: float


def required_classes(graph: DataflowGraph) -> List[str]:
    return sorted({fu_class(n.operation) for n in graph.nodes})


def explore_design_space(graph: DataflowGraph,
                         max_units_per_class: int = 4) -> List[DesignPoint]:
    """Enumerate allocations up to ``max_units_per_class`` and schedule each.

    Returns all evaluated points sorted by area; use
    :func:`pareto_front` for the efficient frontier that Fig. 4 sketches
    between the single-ALU and critical-path extremes.
    """
    classes = required_classes(graph)
    if not classes:
        raise SynthesisError("empty dataflow graph has no design space")
    points: List[DesignPoint] = []
    ranges = [range(1, max_units_per_class + 1)] * len(classes)
    for combo in itertools.product(*ranges):
        allocation = Allocation.of(dict(zip(classes, combo)))
        schedule = list_schedule(graph, allocation.as_dict())
        points.append(DesignPoint(allocation, schedule.makespan, allocation.area))
    points.sort(key=lambda p: (p.area, p.latency_cycles))
    return points


def pareto_front(points: List[DesignPoint]) -> List[DesignPoint]:
    """Area-ascending Pareto frontier (strictly improving latency)."""
    front: List[DesignPoint] = []
    best_latency = None
    for point in sorted(points, key=lambda p: (p.area, p.latency_cycles)):
        if best_latency is None or point.latency_cycles < best_latency:
            front.append(point)
            best_latency = point.latency_cycles
    return front
