"""The behavioral-synthesis facade (the paper's Concentric stand-in).

Table 2/4 of the paper compare the estimation library's closed-form
bounds against "real execution times under resource-constrained and
time-constrained scheduling ... obtained by using the Concentric
behavioral synthesis tool".  :func:`synthesize_best_case` and
:func:`synthesize_worst_case` provide those references:

* **best case** (time-constrained): ASAP schedule with unlimited units —
  every operation still occupies integer cycle slots, so the result is
  the *quantized* critical path (≥ the library's fractional Tmin);
* **worst case** (resource-constrained): list schedule on a single
  universal ALU — every operation serialized on one unit in integer
  slots (≈ the library's Tmax, differing by the quantization).

The deliberate mismatch between the library's fractional single-pass
bounds and the scheduler's integer-slot reality is what produces the
few-percent HW estimation errors the paper reports.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Mapping, Optional, Sequence

from ..annotate.costs import OperationCosts
from ..kernel.time import Clock, SimTime
from .allocation import Allocation, FU_AREA
from .dfg import DataflowGraph, capture_dfg
from .scheduling import Schedule, UNIVERSAL_FU, asap, list_schedule


@dataclasses.dataclass(frozen=True)
class SynthesisResult:
    """Outcome of synthesizing one segment."""

    latency_cycles: int
    clock: Clock
    allocation: Optional[Allocation]
    schedule: Schedule

    @property
    def exec_time(self) -> SimTime:
        return self.clock.cycles_to_time(self.latency_cycles)

    @property
    def exec_time_ns(self) -> float:
        return self.exec_time.to_ns()

    @property
    def area(self) -> float:
        if self.allocation is not None:
            return self.allocation.area
        # Time-constrained: area is whatever the peak parallelism needs.
        return sum(FU_AREA[fu] * count
                   for fu, count in self.schedule.peak_usage.items())


def synthesize_best_case(graph: DataflowGraph, clock: Clock) -> SynthesisResult:
    """Time-constrained synthesis: fastest schedule, unlimited units."""
    schedule = asap(graph)
    schedule.verify(graph)
    return SynthesisResult(schedule.makespan, clock, None, schedule)


def synthesize_worst_case(graph: DataflowGraph, clock: Clock) -> SynthesisResult:
    """Resource-constrained synthesis: one universal ALU for everything."""
    allocation = Allocation.of({UNIVERSAL_FU: 1})
    schedule = list_schedule(graph, allocation.as_dict(), universal=True)
    schedule.verify(graph)
    return SynthesisResult(schedule.makespan, clock, allocation, schedule)


def synthesize_constrained(graph: DataflowGraph, clock: Clock,
                           allocation: Mapping[str, int]) -> SynthesisResult:
    """Resource-constrained synthesis under an explicit allocation."""
    alloc = Allocation.of(dict(allocation))
    schedule = list_schedule(graph, alloc.as_dict())
    schedule.verify(graph)
    return SynthesisResult(schedule.makespan, clock, alloc, schedule)


def synthesize_function(fn: Callable, args: Sequence,
                        costs: OperationCosts, clock: Clock):
    """Capture ``fn(*args)`` and synthesize both extremes.

    Returns ``(graph, best_case_result, worst_case_result)`` — the HW
    reference pair the Table 2/4 benches compare the library against.
    """
    graph = capture_dfg(fn, args, costs)
    return (graph,
            synthesize_best_case(graph, clock),
            synthesize_worst_case(graph, clock))
