"""Operation scheduling: ASAP, ALAP and resource-constrained list scheduling.

This module is the heart of the "Concentric-like" behavioral-synthesis
substrate: given a captured dataflow graph it computes

* the **time-constrained** result — ASAP with unlimited functional
  units: latency = integer-cycle critical path (the synthesis tool's
  best case in Table 2/4);
* the **resource-constrained** result — priority list scheduling under
  a functional-unit allocation; the paper's worst case is the special
  allocation of one universal ALU executing every operation.

Operations map to functional-unit classes through :data:`FU_OF_OP`;
memory accesses occupy a memory port, multiplies a multiplier, and so
on, so richer allocations explore the Fig. 4 design space.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Dict, List, Mapping, Optional

from ..errors import SynthesisError
from .dfg import DataflowGraph

#: Functional-unit class of each operation.
FU_OF_OP: Dict[str, str] = {
    **{op: "alu" for op in (
        "add", "sub", "and", "or", "xor", "shl", "shr", "neg", "inv",
        "abs", "lt", "le", "gt", "ge", "eq", "ne", "assign", "branch",
    )},
    "mul": "mul",
    "div": "div", "mod": "div",
    "load": "mem", "store": "mem",
    **{op: "fpu" for op in ("fadd", "fsub", "fmul", "fdiv",
                            "fneg", "fabs", "fcmp")},
    "call": "alu",
}

#: The synthetic FU class used by "single ALU executes everything".
UNIVERSAL_FU = "universal"


def fu_class(operation: str, universal: bool = False) -> str:
    if universal:
        return UNIVERSAL_FU
    try:
        return FU_OF_OP[operation]
    except KeyError:
        raise SynthesisError(f"no functional-unit class for {operation!r}") from None


@dataclasses.dataclass
class Schedule:
    """A start-cycle assignment for every node, plus the makespan."""

    start: Dict[int, int]
    finish: Dict[int, int]
    makespan: int
    #: FU-class usage histogram: fu -> max simultaneous busy units
    peak_usage: Dict[str, int] = dataclasses.field(default_factory=dict)

    def verify(self, graph: DataflowGraph) -> None:
        """Assert dependence correctness (used by tests and paranoia)."""
        for node in graph.nodes:
            for pred in node.predecessors:
                if self.start[node.node_id] < self.finish[pred]:
                    raise SynthesisError(
                        f"schedule violates dependence {pred} -> {node.node_id}"
                    )


def asap(graph: DataflowGraph, universal: bool = False) -> Schedule:
    """Unlimited-resource as-soon-as-possible schedule."""
    start: Dict[int, int] = {}
    finish: Dict[int, int] = {}
    usage: Dict[tuple, int] = {}
    for node in graph.nodes:
        begin = max((finish[p] for p in node.predecessors), default=0)
        start[node.node_id] = begin
        finish[node.node_id] = begin + node.latency_cycles
        fu = fu_class(node.operation, universal)
        for cycle in range(begin, finish[node.node_id]):
            usage[(fu, cycle)] = usage.get((fu, cycle), 0) + 1
    peak: Dict[str, int] = {}
    for (fu, _cycle), count in usage.items():
        peak[fu] = max(peak.get(fu, 0), count)
    makespan = max(finish.values(), default=0)
    return Schedule(start, finish, makespan, peak)


def alap(graph: DataflowGraph, deadline: Optional[int] = None,
         universal: bool = False) -> Schedule:
    """As-late-as-possible schedule against ``deadline`` (default: ASAP
    makespan — the zero-slack baseline used for list-scheduling priorities)."""
    if deadline is None:
        deadline = asap(graph, universal).makespan
    successors = graph.successors()
    start: Dict[int, int] = {}
    finish: Dict[int, int] = {}
    for node in reversed(graph.nodes):
        succ_starts = [start[s] for s in successors[node.node_id] if s in start]
        end = min(succ_starts, default=deadline)
        begin = end - node.latency_cycles
        if begin < 0:
            raise SynthesisError(
                f"deadline {deadline} is infeasible for node {node.node_id}"
            )
        start[node.node_id] = begin
        finish[node.node_id] = end
    makespan = max(finish.values(), default=0)
    return Schedule(start, finish, makespan, {})


def list_schedule(graph: DataflowGraph,
                  allocation: Mapping[str, int],
                  universal: bool = False,
                  pipelined: bool = False) -> Schedule:
    """Priority list scheduling under a functional-unit allocation.

    ``allocation`` maps FU class → unit count; every class used by the
    graph must be present.  Priority = ALAP start (least slack first),
    the textbook heuristic.  By default units are non-pipelined (busy
    for the whole operation latency); with ``pipelined=True`` every unit
    accepts a new operation each cycle (initiation interval 1) while
    results still take the full latency — fully-pipelined multipliers
    and dividers, the standard datapath upgrade.
    """
    if not len(graph):
        raise SynthesisError("cannot schedule an empty dataflow graph")
    needed = {fu_class(n.operation, universal) for n in graph.nodes}
    for fu in needed:
        count = allocation.get(fu, 0)
        if count <= 0:
            raise SynthesisError(
                f"allocation provides no {fu!r} units but the graph needs them"
            )

    priority = alap(graph, universal=universal).start
    remaining_preds = {n.node_id: len(n.predecessors) for n in graph.nodes}
    successors = graph.successors()
    nodes = {n.node_id: n for n in graph.nodes}

    # (alap_start, node_id) heap of data-ready operations
    ready: List[tuple] = []
    for node in graph.nodes:
        if remaining_preds[node.node_id] == 0:
            heapq.heappush(ready, (priority[node.node_id], node.node_id))

    free_units = {fu: allocation.get(fu, 0) for fu in needed}
    # (release_cycle, node_id, fu) of operations occupying their unit;
    # pipelined units release after one cycle, results land at finish.
    in_flight: List[tuple] = []
    # (finish_cycle, node_id) of pipelined results still in flight
    pending_results: List[tuple] = []
    data_ready_at: Dict[int, int] = {n.node_id: 0 for n in graph.nodes}
    start: Dict[int, int] = {}
    finish: Dict[int, int] = {}
    cycle = 0
    scheduled = 0
    total = len(graph)

    while scheduled < total or in_flight or pending_results:
        # Release units whose occupancy ends at or before this cycle.
        while in_flight and in_flight[0][0] <= cycle:
            _, done_id, fu = heapq.heappop(in_flight)
            free_units[fu] += 1
            if not pipelined:
                for succ in successors[done_id]:
                    remaining_preds[succ] -= 1
                    data_ready_at[succ] = max(data_ready_at[succ],
                                              finish[done_id])
                    if remaining_preds[succ] == 0:
                        heapq.heappush(ready, (priority[succ], succ))
        # Pipelined: results mature independently of unit release.
        while pending_results and pending_results[0][0] <= cycle:
            _, done_id = heapq.heappop(pending_results)
            for succ in successors[done_id]:
                remaining_preds[succ] -= 1
                data_ready_at[succ] = max(data_ready_at[succ], finish[done_id])
                if remaining_preds[succ] == 0:
                    heapq.heappush(ready, (priority[succ], succ))

        # Issue as many ready operations as units allow.
        deferred: List[tuple] = []
        while ready:
            prio, node_id = heapq.heappop(ready)
            node = nodes[node_id]
            fu = fu_class(node.operation, universal)
            if free_units[fu] > 0 and data_ready_at[node_id] <= cycle:
                free_units[fu] -= 1
                start[node_id] = cycle
                finish[node_id] = cycle + node.latency_cycles
                occupancy = 1 if pipelined else node.latency_cycles
                heapq.heappush(in_flight, (cycle + occupancy, node_id, fu))
                if pipelined:
                    heapq.heappush(pending_results, (finish[node_id], node_id))
                scheduled += 1
            else:
                deferred.append((prio, node_id))
        for item in deferred:
            heapq.heappush(ready, item)

        # Advance time to the next interesting cycle.
        next_cycles = [entry[0] for entry in (in_flight[:1] or [])]
        next_cycles += [entry[0] for entry in (pending_results[:1] or [])]
        if next_cycles:
            cycle = min(next_cycles)
        elif scheduled < total:
            raise SynthesisError(
                "list scheduler stalled with unscheduled operations; "
                "the captured graph is inconsistent"
            )

    makespan = max(finish.values(), default=0)
    peak = {fu: allocation.get(fu, 0) for fu in needed}
    return Schedule(start, finish, makespan, peak)
