"""Design-space exploration of the vocoder's architectural mapping.

The paper's point: once estimation is cheap, mapping decisions can be
compared early.  This example runs the five-process vocoder under three
mappings and compares frame latency and processor load:

  A. all five processes on one CPU,
  B. post-processing moved to a hardware fabric (the paper's Table 4
     configuration),
  C. two CPUs: the heavy ACB search gets its own processor.

Run with:  python examples/vocoder_exploration.py [frames]
"""

import sys

from repro import Simulator
from repro.calibration import calibrate, default_microbenchmarks
from repro.core import PerformanceLibrary
from repro.platform import (
    EnvironmentResource,
    Mapping,
    OPENRISC_SW_COSTS,
    make_cpu,
    make_fabric,
)
from repro.workloads.vocoder import STAGE_NAMES, build_vocoder, make_frames


def run_mapping(label, frames, costs, assign):
    """Build, map with `assign(mapping, processes, resources)`, run."""
    simulator = Simulator()
    design = build_vocoder(simulator, frames, annotate=True)
    resources = {
        "cpu0": make_cpu("cpu0", costs=costs),
        "cpu1": make_cpu("cpu1", costs=costs),
        "hw0": make_fabric("hw0", k_factor=0.5),
        "env": EnvironmentResource("tb"),
    }
    mapping = Mapping()
    assign(mapping, design.processes, resources)
    perf = PerformanceLibrary(mapping).attach(simulator)
    final = simulator.run()
    simulator.assert_quiescent()

    frame_rate_us = final.to_us() / len(frames)
    print(f"--- mapping {label}: {final.to_us():.0f} us total, "
          f"{frame_rate_us:.0f} us/frame")
    for name, resource in resources.items():
        if resource.busy_time.femtoseconds:
            load = resource.busy_time.femtoseconds / final.femtoseconds
            print(f"    {name}: busy {resource.busy_time.to_us():.0f} us "
                  f"({100 * load:.0f}% loaded)")
    return final


def mapping_a(mapping, processes, resources):
    for name, process in processes.items():
        target = resources["cpu0"] if name in STAGE_NAMES else resources["env"]
        mapping.assign(process, target)


def mapping_b(mapping, processes, resources):
    for name, process in processes.items():
        if name == "post_proc":
            mapping.assign(process, resources["hw0"])
        elif name in STAGE_NAMES:
            mapping.assign(process, resources["cpu0"])
        else:
            mapping.assign(process, resources["env"])


def mapping_c(mapping, processes, resources):
    for name, process in processes.items():
        if name == "acb_search":
            mapping.assign(process, resources["cpu1"])
        elif name == "post_proc":
            mapping.assign(process, resources["hw0"])
        elif name in STAGE_NAMES:
            mapping.assign(process, resources["cpu0"])
        else:
            mapping.assign(process, resources["env"])


def main():
    frame_count = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    frames = make_frames(frame_count)

    print("calibrating operator weights against the reference ISS ...")
    report = calibrate(default_microbenchmarks(scale=32), OPENRISC_SW_COSTS)
    costs = report.costs

    time_a = run_mapping("A (single CPU)", frames, costs, mapping_a)
    time_b = run_mapping("B (post-proc on HW)", frames, costs, mapping_b)
    time_c = run_mapping("C (ACB on second CPU, post-proc on HW)",
                         frames, costs, mapping_c)

    print()
    print(f"speedup B vs A: {time_a / time_b:.2f}x")
    print(f"speedup C vs A: {time_a / time_c:.2f}x")


if __name__ == "__main__":
    main()
