"""Real-time schedulability and energy analysis of a periodic system.

Three periodic tasks (sensor filtering, control law, telemetry packing)
share one CPU under the strict-timed simulation.  From the measured
run the script derives classical task models, runs rate-monotonic /
EDF schedulability tests, estimates energy, and prints an occupancy
Gantt — the §6 "rate analysis and scheduling" and "consumption"
extensions working off the DATE-2004 estimation core.

Run with:  python examples/realtime_energy.py
"""

from repro import SimTime, Simulator, wait
from repro.annotate import AInt, arange
from repro.capture import CaptureBoard
from repro.core import PerformanceLibrary, render_gantt
from repro.platform import Mapping, make_cpu
from repro.power import PowerBudget, estimate_energy
from repro.rt import schedulability_report, task_from_measurements

JOBS = 8


def make_periodic(name, top, board, period, work_items):
    releases = board.point(f"{name}_release")

    def body():
        for _ in range(JOBS):
            releases.hit()
            accumulator = AInt(0)
            for i in arange(work_items):
                accumulator = accumulator + i * 3
                accumulator = accumulator & 0xFFFF
            yield wait(period)

    body.__name__ = name
    return top.add_process(body, name=name), releases


def main():
    simulator = Simulator()
    top = simulator.module("system")
    board = CaptureBoard(simulator)

    configs = [
        ("sensor_filter", SimTime.us(50), 400),
        ("control_law", SimTime.us(100), 900),
        ("telemetry", SimTime.us(400), 2500),
    ]
    processes = {}
    releases = {}
    for name, period, work in configs:
        processes[name], releases[name] = make_periodic(
            name, top, board, period, work)

    cpu = make_cpu("cpu0")
    mapping = Mapping()
    for process in processes.values():
        mapping.assign(process, cpu)
    perf = PerformanceLibrary(mapping).attach(simulator)
    final = simulator.run()
    simulator.assert_quiescent()

    print(perf.report(final))
    print()

    # --- rate analysis + schedulability ---------------------------------
    tasks = [
        task_from_measurements(name, perf, f"system.{name}", releases[name])
        for name, _period, _work in configs
    ]
    print(schedulability_report(tasks))
    print()

    # --- energy ----------------------------------------------------------
    energy = estimate_energy(perf, tables={},
                             budgets={"cpu0": PowerBudget(static_mw=2.0)})
    print(energy.render())
    print()

    # --- occupancy --------------------------------------------------------
    print(render_gantt(perf, final, width=64))


if __name__ == "__main__":
    main()
