"""A JPEG-style image pipeline: DSE with the estimation library.

Three concurrent stages process 8x8 image blocks:

  blocker  ->  dct_quant  ->  entropy (RLE)  ->  sink

The DCT stage is the arithmetic hot spot; the script compares keeping
it in software against mapping it to a hardware fabric, and checks a
per-block latency constraint with capture points — a compact version of
the paper's intended design-space-exploration workflow on a second
application domain.

Run with:  python examples/image_pipeline.py [blocks]
"""

import sys

from repro import SimTime, Simulator
from repro.annotate import AArray, AInt, unwrap
from repro.capture import CaptureBoard, response_times_ns, summarize_ns
from repro.core import PerformanceLibrary
from repro.platform import (
    EnvironmentResource,
    Mapping,
    make_cpu,
    make_fabric,
)
from repro.workloads.compressor import compress
from repro.workloads.extended import dct_2d, make_dct_cosines
from repro.workloads.common import lcg_stream

BLOCK = 8


def make_blocks(count: int):
    """Synthetic image blocks with smooth gradients + texture."""
    noise = lcg_stream(5, count * BLOCK * BLOCK, 64)
    blocks = []
    for b in range(count):
        block = []
        for y in range(BLOCK):
            for x in range(BLOCK):
                value = (x * 14 + y * 9 + b * 5) % 256 - 128
                value += noise[(b * BLOCK + y) * BLOCK + x] - 32
                block.append(value)
        blocks.append(block)
    return blocks


def build(simulator, blocks, dct_on_hw, costs):
    board = CaptureBoard(simulator)
    in_point = board.point("block_in")
    out_point = board.point("block_out")
    raw = simulator.fifo("raw", capacity=2)
    transformed = simulator.fifo("transformed", capacity=2)
    encoded = simulator.fifo("encoded")
    top = simulator.module("pipeline")
    cosines = make_dct_cosines(BLOCK)
    results = []

    def blocker():
        for block in blocks:
            in_point.hit()
            yield from raw.write(list(block))

    def dct_quant():
        for _ in range(len(blocks)):
            block = yield from raw.read()
            tmp = AArray([0] * (BLOCK * BLOCK))
            out = AArray([0] * (BLOCK * BLOCK))
            dct_2d(AArray(block), AArray(cosines), tmp, out, BLOCK)
            # crude quantization: keep coefficients above a threshold
            coefficients = out.to_list()
            quantized = [v // 16 for v in coefficients]
            yield from transformed.write(quantized)

    def entropy():
        for _ in range(len(blocks)):
            coefficients = yield from transformed.read()
            shifted = [v + 128 for v in coefficients]  # non-negative symbols
            dst = AArray([0] * (2 * BLOCK * BLOCK))
            words = compress(AArray(shifted), dst,
                             AArray([0] * 256), AInt(BLOCK * BLOCK))
            yield from encoded.write((int(unwrap(words)), dst.to_list()))

    def sink():
        for _ in range(len(blocks)):
            payload = yield from encoded.read()
            out_point.hit(payload[0])
            results.append(payload)

    processes = {
        "blocker": top.add_process(blocker),
        "dct_quant": top.add_process(dct_quant),
        "entropy": top.add_process(entropy),
        "sink": top.add_process(sink),
    }
    cpu = make_cpu("cpu0", costs=costs)
    hw = make_fabric("hw0", k_factor=0.2)
    env = EnvironmentResource("tb")
    mapping = Mapping()
    mapping.assign(processes["blocker"], env)
    mapping.assign(processes["sink"], env)
    mapping.assign(processes["dct_quant"], hw if dct_on_hw else cpu)
    mapping.assign(processes["entropy"], cpu)
    perf = PerformanceLibrary(mapping).attach(simulator)
    return board, perf, results


def run_variant(blocks, dct_on_hw, costs):
    simulator = Simulator()
    board, perf, results = build(simulator, blocks, dct_on_hw, costs)
    final = simulator.run()
    simulator.assert_quiescent()
    label = "DCT on HW " if dct_on_hw else "all SW    "
    latencies = response_times_ns(board["block_in"], board["block_out"])
    print(f"--- {label}: {final.to_us():8.1f} us total, "
          f"block latency {summarize_ns(latencies)}")
    return final, results


def main():
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    blocks = make_blocks(count)

    from repro.calibration import calibrate, default_microbenchmarks
    from repro.platform import OPENRISC_SW_COSTS
    print("calibrating ...")
    costs = calibrate(default_microbenchmarks(scale=32),
                      OPENRISC_SW_COSTS).costs

    time_sw, results_sw = run_variant(blocks, False, costs)
    time_hw, results_hw = run_variant(blocks, True, costs)
    assert results_sw == results_hw, "mapping must not change functionality"
    print(f"\nmoving the DCT to hardware: {time_sw / time_hw:.2f}x faster")
    total_words = sum(words for words, _ in results_sw)
    print(f"compression: {count * 64} coefficients -> {total_words} words")


if __name__ == "__main__":
    main()
