"""Timing-constraint verification with capture points (paper §4/§6).

A request/response design runs strict-timed; capture points record the
exact instants of stimulus and completion.  The script verifies a
response-time deadline, reports throughput and rate statistics, exports
the event lists for Matlab/Octave post-processing, and finally runs the
determinism check between the untimed and timed simulations.

Run with:  python examples/capture_verification.py
"""

from repro import SimTime, Simulator, TraceRecorder, wait
from repro.annotate import AInt, arange
from repro.capture import (
    CaptureBoard,
    deadline_violations,
    mean_period_ns,
    response_times_ns,
    summarize_ns,
    throughput_per_us,
    to_matlab_text,
)
from repro.core import PerformanceLibrary, check_determinism
from repro.platform import EnvironmentResource, Mapping, make_cpu

REQUESTS = 10
DEADLINE = SimTime.us(40)


def build(simulator, timed):
    board = CaptureBoard(simulator)
    requests = simulator.fifo("requests", capacity=2)
    responses = simulator.fifo("responses")
    top = simulator.module("top")

    request_point = board.point("request")
    response_point = board.point("response")
    overrun_point = board.point("large_response",
                                condition=lambda v: v is not None and v > 2000)

    def client():
        for i in range(REQUESTS):
            request_point.hit(i)
            yield from requests.write(i * 7 + 1)
            yield wait(SimTime.us(5))

    def server():
        for _ in range(REQUESTS):
            job = yield from requests.read()
            acc = AInt(int(job))
            for k in arange(400):
                acc = acc + k * job
            acc = acc % 4093
            response_point.hit(int(acc))
            overrun_point.hit(int(acc))
            yield from responses.write(int(acc))

    def sink():
        for _ in range(REQUESTS):
            yield from responses.read()

    client_proc = top.add_process(client)
    server_proc = top.add_process(server)
    sink_proc = top.add_process(sink)

    if timed:
        cpu = make_cpu("cpu0")
        env = EnvironmentResource("tb")
        mapping = Mapping()
        mapping.assign(server_proc, cpu)
        mapping.assign(client_proc, env)
        mapping.assign(sink_proc, env)
        PerformanceLibrary(mapping).attach(simulator)
    return board


def main():
    # --- strict-timed run with capture points ---------------------------
    timed_sim = Simulator(trace=True)
    board = build(timed_sim, timed=True)
    timed_sim.run()
    timed_sim.assert_quiescent()

    request_point = board["request"]
    response_point = board["response"]

    latencies = response_times_ns(request_point, response_point)
    print("response-time analysis:")
    print(f"  {summarize_ns(latencies)}")
    print(f"  server throughput: {throughput_per_us(response_point):.3f} "
          f"responses/us")
    print(f"  response period:   {mean_period_ns(response_point):.0f} ns")
    print(f"  conditional probe 'large_response' hits: "
          f"{len(board['large_response'])}")

    violations = deadline_violations(request_point, response_point, DEADLINE)
    if violations:
        print(f"  DEADLINE VIOLATIONS at requests {violations} "
              f"(> {DEADLINE})")
    else:
        print(f"  all {REQUESTS} responses met the {DEADLINE} deadline")

    print("\nMatlab export preview:")
    for line in to_matlab_text([response_point]).splitlines():
        print("  " + line[:76])

    # --- determinism check: untimed vs timed -----------------------------
    untimed_sim = Simulator(trace=True)
    build(untimed_sim, timed=False)
    untimed_sim.run()
    untimed_sim.assert_quiescent()

    differences = check_determinism(untimed_sim.trace, timed_sim.trace)
    if differences:
        print("\ndeterminism check FAILED (order-dependent design):")
        for difference in differences:
            print("  " + difference)
    else:
        print("\ndeterminism check passed: untimed and strict-timed runs "
              "follow identical per-process paths")


if __name__ == "__main__":
    main()
