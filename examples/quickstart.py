"""Quickstart: estimate a producer/consumer design in five steps.

1. Describe the system with processes and channels (untimed).
2. Write the computation once, over annotated-friendly types.
3. Map processes onto platform resources.
4. Attach the performance library.
5. Run: the simulation is now strict-timed and reports itself.

Run with:  python examples/quickstart.py
"""

from repro import SimTime, Simulator, wait
from repro.annotate import AInt, arange
from repro.core import PerformanceLibrary
from repro.platform import Mapping, make_cpu, make_fabric


def checksum_block(seed, length):
    """The 'application': a toy rolling checksum (single-source kernel)."""
    acc = AInt(int(seed))
    for i in arange(length):
        acc = acc * 31 + i
        acc = acc & 0xFFFFFF
    return acc


def main():
    simulator = Simulator()
    link = simulator.fifo("link", capacity=4)
    top = simulator.module("top")
    results = []

    def producer():
        for block in range(8):
            value = checksum_block(block, 64)
            yield from link.write(int(value))
            yield wait(SimTime.us(1))       # pacing: one block per µs

    def consumer():
        for _ in range(8):
            value = yield from link.read()
            digest = checksum_block(value, 128)
            results.append(int(digest))

    producer_proc = top.add_process(producer)
    consumer_proc = top.add_process(consumer)

    # Architectural mapping: producer in hardware, consumer in software.
    cpu = make_cpu("cpu0")
    fabric = make_fabric("hw0", k_factor=0.5)
    mapping = Mapping()
    mapping.assign(producer_proc, fabric)
    mapping.assign(consumer_proc, cpu)

    perf = PerformanceLibrary(mapping).attach(simulator)
    final_time = simulator.run()
    simulator.assert_quiescent()

    print(f"processed {len(results)} blocks, last digest = {results[-1]}")
    print(f"simulated span: {final_time}")
    print()
    print(perf.report(final_time))
    print()
    print("-- per-segment detail --")
    print(perf.segment_report())


if __name__ == "__main__":
    main()
