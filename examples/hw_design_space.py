"""Hardware design-space exploration of one segment (paper Fig. 4).

Captures the dataflow of a FIR output-sample segment, then:

* sweeps the paper's ``k`` constant to show the single annotated value
  moving between the critical-path and single-ALU extremes,
* fans one ``hw-point`` campaign configuration per functional-unit
  allocation through the batch orchestrator (``repro.batch``) to chart
  the real area/time trade-off curve, with cached re-runs,
* *searches* a bigger allocation grid under an evaluation budget with
  the seeded evolutionary engine (``repro.dse``) and prints the
  MCDM-ranked Pareto front it converges to.

Run with:  python examples/hw_design_space.py [workers]
"""

import sys
import tempfile

from repro.annotate import AArray, CostContext, MODE_HW, active
from repro.batch import Campaign, fig4_sweep_configs
from repro.core import SegmentEstimate
from repro.hls import (
    Allocation,
    DesignPoint,
    capture_dfg,
    pareto_front,
    synthesize_best_case,
    synthesize_worst_case,
)
from repro.kernel import Clock
from repro.platform import ASIC_HW_COSTS, HW_CLOCK_MHZ
from repro.workloads.fir import _lowpass_taps, fir_sample

TAPS = 12


def main(workers: int = 0):
    clock = Clock.from_frequency_mhz(HW_CLOCK_MHZ)
    x = AArray([(i * 23 + 7) % 256 - 128 for i in range(TAPS)])
    h = AArray(_lowpass_taps(TAPS))
    args = (x, h, TAPS)

    # --- the library's view: one pass, two bounds -----------------------
    context = CostContext(ASIC_HW_COSTS, MODE_HW)
    with active(context):
        fir_sample(*args)
    t_max, t_min = context.segment_totals()
    estimate = SegmentEstimate(t_max, t_min)
    print(f"library bounds: Tmin = {t_min:.1f} cyc (critical path), "
          f"Tmax = {t_max:.1f} cyc (single ALU)")
    print("k-sweep of the annotated value  T = Tmin + (Tmax - Tmin) * k:")
    for tenth in range(0, 11, 2):
        k = tenth / 10
        cycles = estimate.interpolate(k)
        print(f"  k = {k:.1f}: {cycles:6.1f} cyc "
              f"= {clock.cycles_to_time(cycles).to_ns():6.0f} ns")

    # --- the synthesis tool's view: actual schedules ---------------------
    graph = capture_dfg(fir_sample, args, ASIC_HW_COSTS)
    print(f"\ncaptured DFG: {len(graph)} operations {graph.operations_used()}")
    best = synthesize_best_case(graph, clock)
    worst = synthesize_worst_case(graph, clock)
    print(f"time-constrained (unlimited units): {best.latency_cycles} cyc, "
          f"area {best.area:.0f}")
    print(f"resource-constrained (1 universal ALU): {worst.latency_cycles} cyc, "
          f"area {worst.area:.0f}")

    print("\narea/time Pareto frontier (list scheduling, <=3 units/class,")
    print(f"swept as a {workers or 'serial'}-worker batch campaign):")
    configs = fig4_sweep_configs(max_units_per_class=3, taps=TAPS,
                                 evaluate_system=False)
    with tempfile.TemporaryDirectory() as cache_dir:
        campaign = Campaign(configs, workers=workers, cache=cache_dir)
        results = campaign.run()
        points = [DesignPoint(Allocation.of(r.payload["allocation"]),
                              r.payload["latency_cycles"], r.payload["area"])
                  for r in results if r.ok]
        points.sort(key=lambda p: (p.area, p.latency_cycles))
        for point in pareto_front(points):
            print(f"  area {point.area:5.1f}  {point.latency_cycles:3d} cyc   "
                  f"{point.allocation}")
        print(f"  campaign: {campaign.metrics.summary()}")

        # A re-run of the same sweep is answered from the result cache.
        rerun = Campaign(configs, workers=workers, cache=cache_dir)
        rerun.run()
        print(f"  re-run:   {rerun.metrics.summary()}")

    # --- searching instead of enumerating: repro.dse ---------------------
    from repro.dse import DseSettings, Evolution, fig4_space, parse_objectives

    space = fig4_space(max_units_per_class=4, taps=TAPS)
    budget = space.size() // 4
    print(f"\nevolutionary search of the {space.size()}-point grid "
          f"(seed 0, budget {budget} = 25% of exhaustive):")
    with tempfile.TemporaryDirectory() as cache_dir:
        result = Evolution(space, parse_objectives("time,power,cost"),
                           DseSettings(seed=0, budget=budget),
                           cache=cache_dir, workers=workers).run()
        for point in result.front:
            label = ",".join(f"{g.name}={v}"
                             for g, v in zip(space.genes, point.genome))
            print(f"  rank {point.rank}: {label:20s} "
                  f"time {point.objectives[0]:5.0f} ns  "
                  f"power {point.objectives[1]:.2f} mW  "
                  f"area {point.objectives[2]:3.0f}  "
                  f"score {point.score:.3f}")
        totals = result.totals()
        print(f"  decision: {space.label(result.best.genome)} after "
              f"{result.evaluations} evaluations "
              f"({totals['cache_hits']} re-evaluations were cache hits)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 0)
